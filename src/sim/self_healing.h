#ifndef M2M_SIM_SELF_HEALING_H_
#define M2M_SIM_SELF_HEALING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/path_system.h"
#include "runtime/detector.h"
#include "runtime/network.h"
#include "sim/base_station.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Knobs for the self-healing control loop.
struct SelfHealingOptions {
  DetectorOptions detector;
  /// Data-plane ack/retry policy (RunRoundLossy).
  RetryPolicy retry;
  /// Transmission attempts per control-message hop per round. A control
  /// message (suspicion report, plan image, epoch bump, install ack)
  /// advances as many hops as deliver within a round and stalls at the
  /// first hop that exhausts its attempts, resuming next round.
  int control_hop_attempts = 8;
  /// Rounds a sender waits for an end-to-end acknowledgment before
  /// re-emitting a control message (covers holders dying mid-route).
  int resend_after_rounds = 3;
};

/// Outcome of one self-healed round.
struct SelfHealingRoundResult {
  /// The data round itself (values, epochs, retry stats, heard evidence).
  RuntimeNetwork::LossyResult data;
  /// Failure-detector traffic this round.
  int64_t probe_transmissions = 0;
  int64_t probe_confirmations = 0;
  /// Suspicions newly raised by monitors this round.
  int new_suspicions = 0;
  /// Suspected links readmitted this round (probation completed).
  int readmissions = 0;
  /// Control-plane traffic this round (reports, images, bumps, acks).
  int64_t control_hop_attempts = 0;
  int64_t control_hops_crossed = 0;
  /// Payload bytes of control messages that reached their target.
  int64_t control_payload_bytes = 0;
  int64_t control_messages_delivered = 0;
  /// True iff the base station opened a new plan epoch this round.
  bool replanned = false;
  /// The base station's current plan epoch after this round.
  uint32_t base_epoch = 0;
  /// Dissemination targets whose install the base has not yet seen acked.
  int pending_installs = 0;
};

/// The tentpole self-healing loop: aggregation rounds run over lossy links
/// while the network detects persistent failures *in-band* and repairs its
/// own plan — no component ever reads the fault schedule's event list; the
/// only physical inputs are per-attempt delivery outcomes and each node's
/// own aliveness (LossyLinkModel), exactly what a deployed network observes.
///
/// Per round:
///   1. Data round over the installed (possibly mixed-epoch) plan images,
///      with ack/retry and the receiver-side epoch gate.
///   2. Failure detection: piggybacked heartbeats from the round's traffic
///      plus explicit probes for silent neighbors (runtime/detector.h);
///      monitors whose missed count crosses the threshold raise suspicions,
///      and keep probing suspected links so a recovered neighbor can earn
///      readmission through the detector's probation hysteresis.
///   3. Control plane: suspicion reports route hop-by-hop to the base
///      station, which folds them into its SuspicionLedger; plan images,
///      epoch bumps and install acks route the other way. Every message is
///      resumable across rounds and re-emitted if unacked.
///   4. Re-planning: on any ledger change the base station re-plans against
///      its believed topology (ReplanForTopology — Corollary 1 keeps the
///      patch local), opens a new plan epoch, and disseminates only the
///      diff: full images to content-changed nodes, 5-byte epoch bumps to
///      unchanged participants. Readmitted nodes always get a full image —
///      whatever stale-epoch tables they rebooted with, the install
///      reconciles their lineage with the base station's (higher epoch
///      wins).
///
/// Safe transitions fall out of the epoch protocol: a node installing an
/// image drops its old-epoch round state, and the runtime's epoch gate
/// keeps mixed rounds from merging records across plan generations, so
/// every converged value is attributable to exactly one epoch.
class SelfHealingRuntime {
 public:
  /// `base_station` must be a protected (never-dying) node.
  SelfHealingRuntime(const Topology& topology, const Workload& workload,
                     NodeId base_station,
                     const SelfHealingOptions& options = {});

  /// Runs one round. `physical.attempt_delivers` must be the physical link
  /// oracle for this round (false for dead endpoints and failed links —
  /// e.g. FaultSchedule::AttemptDelivers bound to `round`);
  /// `physical.node_alive` reports physical aliveness (a dead node runs
  /// nothing). Attempt indices beyond the data plane's small values are
  /// drawn from disjoint namespaces (probes 1000+, control 2000+), so the
  /// oracle must accept arbitrary attempt indices.
  SelfHealingRoundResult RunRound(int round,
                                  const std::vector<double>& readings,
                                  const LossyLinkModel& physical,
                                  EventTrace* trace = nullptr);

  /// Replaces the configured workload (query-lifecycle churn: queries
  /// admitted, retired, or modified at the base station). Takes effect at
  /// the next RunRound through the same replan / epoch / dissemination
  /// machinery as failure repair — the believed workload becomes this
  /// workload minus believed-dead sources — so churn composes with
  /// failures, loss, and rejoin.
  void SubmitWorkload(const Workload& workload);

  /// Attaches a metrics registry to the control loop and the underlying
  /// RuntimeNetwork: rounds then record detector traffic (probes,
  /// confirmations, suspicion raises), control-plane hop attempts and
  /// crossings, dissemination (images/bumps queued, install bytes), and
  /// replan activity (replans, epoch gauge, patch-locality edge counts)
  /// alongside the runtime.* data-plane counters. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  uint32_t base_epoch() const { return epoch_; }
  const GlobalPlan& plan() const { return plan_; }
  const CompiledPlan& compiled() const { return *compiled_; }
  /// The believed workload: the original workload minus the sources of
  /// currently-believed-dead nodes. Recomputed from the original on every
  /// belief change, so a readmitted node's sources come back.
  const Workload& current_workload() const { return workload_; }
  const SuspicionLedger& ledger() const { return ledger_; }
  const FailureDetector& detector() const { return detector_; }
  const RuntimeNetwork& network() const { return network_; }
  /// Dissemination targets not yet known-installed for the current epoch.
  int pending_installs() const;
  /// Round at which each epoch was opened (epoch -> round); epoch 0 maps
  /// to -1. Detection-latency measurements read this.
  const std::map<uint32_t, int>& epoch_opened_round() const {
    return epoch_opened_round_;
  }

 private:
  struct ControlMessage {
    enum class Kind { kReport, kReportAck, kImage, kBump, kAck };
    Kind kind;
    NodeId origin = kInvalidNode;
    NodeId target = kInvalidNode;
    NodeId holder = kInvalidNode;
    std::vector<uint8_t> payload;
    uint32_t epoch = 0;  ///< Plan epoch for kImage/kBump/kAck.
    int seq = 0;         ///< Decorrelates per-hop attempt indices.
    int last_advanced_round = -1;
  };

  void QueueControl(ControlMessage::Kind kind, NodeId origin, NodeId target,
                    std::vector<uint8_t> payload, uint32_t epoch);
  void AdvanceControlPlane(int round, const LossyLinkModel& physical,
                           SelfHealingRoundResult& result,
                           EventTrace* trace);
  void DeliverControl(const ControlMessage& message, int round,
                      EventTrace* trace);
  void MaybeReplan(int round, SelfHealingRoundResult& result,
                   EventTrace* trace);
  void RefreshControlPaths();
  std::vector<std::vector<NodeId>> SegmentsFor(NodeId node) const;

  /// Pre-resolved metric handles (see RuntimeNetwork::MetricHandles).
  struct MetricHandles {
    obs::MetricHandle probe_tx;
    obs::MetricHandle probe_confirms;
    obs::MetricHandle suspicions;
    obs::MetricHandle control_hop_attempts;
    obs::MetricHandle control_hops;
    obs::MetricHandle control_delivered;
    obs::MetricHandle control_bytes;
    obs::MetricHandle replans;
    obs::MetricHandle epoch_gauge;
    obs::MetricHandle images_queued;
    obs::MetricHandle bumps_queued;
    obs::MetricHandle edges_reused;
    obs::MetricHandle edges_reoptimized;
    obs::MetricHandle pending_installs;
    obs::MetricHandle readmissions;
    obs::MetricHandle probation_rounds;
    obs::MetricHandle epoch_reconciliations;
  };

  const Topology* topology_;
  NodeId base_;
  SelfHealingOptions options_;
  /// The deployment's full workload, as configured. Never mutated.
  Workload original_workload_;
  /// The believed workload: original minus believed-dead sources.
  Workload workload_;
  uint32_t epoch_ = 0;
  GlobalPlan plan_;
  std::shared_ptr<CompiledPlan> compiled_;
  /// Current-epoch wire images per node.
  std::vector<std::vector<uint8_t>> images_;
  RuntimeNetwork network_;
  FailureDetector detector_;
  SuspicionLedger ledger_;
  int ledger_revision_applied_ = 0;
  /// Bumped by SubmitWorkload; a lagging applied counter triggers a replan
  /// exactly like a ledger revision change.
  int workload_revision_ = 0;
  int workload_revision_applied_ = 0;

  /// Paths control messages route over: the deployment topology minus
  /// every link any monitor suspects (suspicions propagate through the
  /// control plane itself; routing around them immediately is what lets a
  /// report escape a region whose primary path just failed).
  PathSystem control_paths_;
  std::set<std::pair<NodeId, NodeId>> control_paths_suspected_;

  std::vector<ControlMessage> in_flight_;
  int next_seq_ = 0;

  /// Monitor-side: suspicions raised but not yet acked by the base
  /// station, with the round their report was last emitted.
  struct MonitorOutbox {
    std::set<std::pair<NodeId, int>> pending;  // (neighbor, round raised).
    /// Readmissions not yet acked: (neighbor, round probation completed).
    std::set<std::pair<NodeId, int>> retractions;
    int last_sent_round = -1;
    bool report_in_flight = false;
  };
  std::map<NodeId, MonitorOutbox> monitor_outbox_;

  /// Base-side: per dissemination target of the current epoch.
  struct PendingInstall {
    bool is_bump = false;
    int last_sent_round = -1;
    bool in_flight = false;
    bool acked = false;
  };
  std::map<NodeId, PendingInstall> pending_installs_;

  std::map<uint32_t, int> epoch_opened_round_;

  /// believed_dead() as of the last applied replan; a node leaving this set
  /// is a readmission and is forced a full image (not a bump).
  std::vector<NodeId> believed_dead_applied_;

  obs::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;
};

}  // namespace m2m

#endif  // M2M_SIM_SELF_HEALING_H_
