#ifndef M2M_SIM_READINGS_H_
#define M2M_SIM_READINGS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace m2m {

/// Per-round sensor readings: a deterministic random walk in which each
/// node's value changes with a configurable probability per round (the
/// "probability of value change" axis of paper Figure 7; changes below a
/// suppression threshold simply never happen in this model).
class ReadingGenerator {
 public:
  /// Initial values are uniform in [10, 30); steps are Gaussian with the
  /// given standard deviation.
  ReadingGenerator(int node_count, uint64_t seed, double step_stddev = 2.0);

  ReadingGenerator(const ReadingGenerator&) = default;
  ReadingGenerator& operator=(const ReadingGenerator&) = default;

  const std::vector<double>& values() const { return values_; }

  /// Advances one round: each node's value steps with probability
  /// `change_probability`. Returns the per-node changed flags.
  std::vector<bool> Advance(double change_probability);

 private:
  Rng rng_;
  double step_stddev_;
  std::vector<double> values_;
};

}  // namespace m2m

#endif  // M2M_SIM_READINGS_H_
