#include "sim/executor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <set>

#include "agg/partial_record.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace m2m {

namespace {

// Tolerances for verifying distributed results against direct evaluation.
constexpr double kFullRoundTolerance = 1e-9;
constexpr double kSuppressedTolerance = 1e-6;

bool ApproximatelyEqual(double a, double b, double tolerance) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tolerance * scale;
}

// How an override policy evaluates the local trade-off. `threshold` is the
// maximum acceptable ratio of raw cost to replaced-partial cost (negative =
// never override). `informed` policies discount partials that other changed
// sources would force onto the wire anyway — the paper's "more judicious"
// conservative behavior — while uninformed policies judge each arriving
// value in isolation.
struct OverrideBehavior {
  double threshold = -1.0;
  bool informed = false;
};

OverrideBehavior BehaviorOf(OverridePolicy policy) {
  switch (policy) {
    case OverridePolicy::kNone:
      return {-1.0, false};
    case OverridePolicy::kConservative:
      return {1.0, true};
    case OverridePolicy::kMedium:
      return {0.7, false};
    case OverridePolicy::kAggressive:
      return {1.0, false};
  }
  return {-1.0, false};
}

}  // namespace

std::string ToString(OverridePolicy policy) {
  switch (policy) {
    case OverridePolicy::kNone:
      return "none";
    case OverridePolicy::kConservative:
      return "conservative";
    case OverridePolicy::kMedium:
      return "medium";
    case OverridePolicy::kAggressive:
      return "aggressive";
  }
  return "unknown";
}

PlanExecutor::PlanExecutor(std::shared_ptr<const CompiledPlan> compiled,
                           FunctionSet functions, EnergyModel energy)
    : compiled_(std::move(compiled)),
      functions_(std::move(functions)),
      energy_(energy) {
  M2M_CHECK(compiled_ != nullptr);
  const GlobalPlan& plan = compiled_->plan();
  const MulticastForest& forest = plan.forest();
  for (size_t e = 0; e < forest.edges().size(); ++e) {
    const NodeId tail = forest.edges()[e].edge.tail;
    for (NodeId d : plan.plan_for(static_cast<int>(e)).agg_destinations) {
      auto [it, inserted] =
          fold_edge_.emplace(Key(tail, d), static_cast<int>(e));
      M2M_CHECK(inserted) << "destination " << d
                          << " has two partial edges out of node " << tail;
      agg_edges_by_dest_[d].push_back(static_cast<int>(e));
    }
  }
}

int PlanExecutor::PartialUnitBytes(NodeId destination) const {
  return kIdTagBytes + functions_.Get(destination).partial_record_bytes();
}

void PlanExecutor::ChargeMessage(int edge_index, int payload_bytes,
                                 RoundResult& result,
                                 std::vector<double>* battery_uj) const {
  const ForestEdge& edge =
      compiled_->plan().forest().edges()[edge_index];
  result.messages += 1;
  result.payload_bytes += payload_bytes;
  for (size_t i = 0; i + 1 < edge.segment.size(); ++i) {
    if (free_link_ != nullptr &&
        free_link_(edge.segment[i], edge.segment[i + 1])) {
      continue;  // Local bus transfer: no radio energy.
    }
    double tx_mj = energy_.TxUj(payload_bytes) / 1000.0;
    double rx_mj = energy_.RxUj(payload_bytes) / 1000.0;
    result.node_energy_mj[edge.segment[i]] += tx_mj;
    result.node_energy_mj[edge.segment[i + 1]] += rx_mj;
    result.energy_mj += tx_mj + rx_mj;
    result.physical_transmissions += 1;
    if (battery_uj != nullptr) {
      (*battery_uj)[edge.segment[i]] += energy_.TxUj(payload_bytes);
      (*battery_uj)[edge.segment[i + 1]] += energy_.RxUj(payload_bytes);
    }
  }
}

double PlanExecutor::EvaluateTaskRound(
    const Task& task, const std::vector<double>& readings) const {
  const GlobalPlan& plan = compiled_->plan();
  const MulticastForest& forest = plan.forest();
  const NodeId d = task.destination;

  // Reconstruct where each of this task's sources folds into d's partial,
  // walking every route (same traversal the compiler used to build the
  // node tables). Each (edge, destination) partial unit belongs to exactly
  // one task — the forest holds one task per destination — so evaluating
  // per task partitions the serial pass without changing any unit.
  std::map<int, std::set<NodeId>> folds;   // edge -> folded sources
  std::map<int, std::set<int>> chains;     // edge -> upstream edges
  std::set<NodeId> dest_folds;
  std::set<int> dest_chains;
  for (NodeId s : task.sources) {
    if (s == d) {
      dest_folds.insert(s);
      continue;
    }
    const std::vector<int>& route = forest.Route(SourceDestPair{s, d});
    bool carried_raw = true;
    for (size_t i = 0; i < route.size(); ++i) {
      const int e = route[i];
      const EdgePlan& edge_plan = plan.plan_for(e);
      if (carried_raw && edge_plan.TransmitsRaw(s)) continue;
      M2M_CHECK(edge_plan.TransmitsAggregate(d));
      if (carried_raw) {
        folds[e].insert(s);
      } else {
        chains[e].insert(route[i - 1]);
      }
      carried_raw = false;
    }
    if (carried_raw) {
      dest_folds.insert(s);
    } else {
      dest_chains.insert(route.back());
    }
  }

  // Evaluate partial-unit contents bottom-up with memoization.
  const AggregateFunction& fn = functions_.Get(d);
  std::map<int, PartialRecord> content;
  auto compute_content = [&](auto&& self, int e) -> PartialRecord {
    auto memo = content.find(e);
    if (memo != content.end()) return memo->second;
    std::optional<PartialRecord> acc;
    auto add = [&](const PartialRecord& r) {
      acc = acc.has_value() ? fn.Merge(*acc, r) : r;
    };
    auto fold_it = folds.find(e);
    if (fold_it != folds.end()) {
      for (NodeId s : fold_it->second) add(fn.PreAggregate(s, readings[s]));
    }
    auto chain_it = chains.find(e);
    if (chain_it != chains.end()) {
      for (int prev : chain_it->second) add(self(self, prev));
    }
    M2M_CHECK(acc.has_value())
        << "partial unit (" << e << ", " << d << ") has no contributions";
    content[e] = *acc;
    return *acc;
  };

  // Verify each of d's partial units equals the direct merge over its
  // edge's pairs — the same (edge, destination) set the serial edge sweep
  // covered, resliced by destination.
  auto agg_edges = agg_edges_by_dest_.find(d);
  if (agg_edges != agg_edges_by_dest_.end()) {
    for (int e : agg_edges->second) {
      const ForestEdge& edge = forest.edges()[e];
      const EdgePlan& edge_plan = plan.plan_for(e);
      PartialRecord distributed = compute_content(compute_content, e);
      std::optional<PartialRecord> expected;
      for (const SourceDestPair& pair : edge.pairs) {
        if (pair.destination != d) continue;
        // A source whose raw value also crosses this edge contributes to
        // d's partial further downstream, not here.
        if (edge_plan.TransmitsRaw(pair.source)) continue;
        PartialRecord r = fn.PreAggregate(pair.source,
                                          readings[pair.source]);
        expected =
            expected.has_value() ? fn.Merge(*expected, r) : r;
      }
      M2M_CHECK(expected.has_value());
      for (size_t f = 0; f < distributed.fields.size(); ++f) {
        M2M_CHECK(ApproximatelyEqual(distributed.fields[f],
                                     expected->fields[f],
                                     kFullRoundTolerance))
            << "partial for " << d << " diverges on edge "
            << edge.edge.tail << "->" << edge.edge.head;
      }
    }
  }

  std::optional<PartialRecord> acc;
  auto add = [&](const PartialRecord& r) {
    acc = acc.has_value() ? fn.Merge(*acc, r) : r;
  };
  for (NodeId s : dest_folds) add(fn.PreAggregate(s, readings[s]));
  for (int prev : dest_chains) add(compute_content(compute_content, prev));
  M2M_CHECK(acc.has_value())
      << "destination " << d << " received no contributions";
  double value = fn.Evaluate(*acc);
  std::unordered_map<NodeId, double> inputs;
  for (NodeId s : task.sources) inputs[s] = readings[s];
  M2M_CHECK(
      ApproximatelyEqual(value, fn.Direct(inputs), kFullRoundTolerance))
      << "destination " << d << " computed a wrong aggregate";
  return value;
}

RoundResult PlanExecutor::RunRound(const std::vector<double>& readings,
                                   const TransmissionOptions& options) const {
  const GlobalPlan& plan = compiled_->plan();
  const MulticastForest& forest = plan.forest();
  M2M_CHECK_EQ(static_cast<int>(readings.size()), forest.node_count());
  RoundResult result;
  result.plan_epoch = compiled_->plan_epoch();
  result.node_energy_mj.assign(forest.node_count(), 0.0);

  // Each task reads only its own routes and (edge, destination) lattice,
  // so tasks shard freely; values land by task index and merge in task
  // order, making the result byte-identical to the serial pass for any
  // thread/shard count.
  const std::vector<Task>& tasks = forest.tasks();
  std::vector<double> task_values(tasks.size(), 0.0);
  ParallelFor(static_cast<int64_t>(tasks.size()),
              [&](int64_t begin, int64_t end) {
                for (int64_t t = begin; t < end; ++t) {
                  task_values[t] = EvaluateTaskRound(tasks[t], readings);
                }
              });
  for (size_t t = 0; t < tasks.size(); ++t) {
    result.destination_values[tasks[t].destination] = task_values[t];
  }

  // Charge energy: every scheduled message is transmitted in a full round.
  const MessageSchedule& schedule = compiled_->schedule();
  std::vector<double> battery_uj;
  std::vector<double>* uj = nullptr;
  if (battery_ != nullptr) {
    battery_uj.assign(forest.node_count(), 0.0);
    uj = &battery_uj;
  }
  auto charge_battery = [&] {
    if (battery_ == nullptr) return;
    for (double& u : battery_uj) u /= 1000.0;
    battery_->ChargeRound(battery_uj);
  };
  if (!options.use_broadcast) {
    for (const MessageSchedule::Message& message : schedule.messages()) {
      int payload = 0;
      for (int u : message.unit_ids) {
        payload += schedule.units()[u].unit_bytes;
      }
      result.units += static_cast<int64_t>(message.unit_ids.size());
      ChargeMessage(message.edge_index, payload, result, uj);
    }
    charge_battery();
    return result;
  }

  // Broadcast optimization: a raw unit carried by two or more of a node's
  // one-hop outgoing messages is transmitted once as a local broadcast;
  // the intended recipients selectively listen.
  std::map<std::pair<NodeId, NodeId>, std::vector<int>> carriers;
  for (size_t m = 0; m < schedule.messages().size(); ++m) {
    const MessageSchedule::Message& message = schedule.messages()[m];
    const ForestEdge& edge = forest.edges()[message.edge_index];
    if (edge.hop_length() != 1) continue;
    for (int u : message.unit_ids) {
      const MessageUnit& unit = schedule.units()[u];
      if (!unit.is_partial) {
        carriers[{edge.edge.tail, unit.subject}].push_back(
            static_cast<int>(m));
      }
    }
  }
  std::set<std::pair<NodeId, NodeId>> moved;  // (tail, source)
  struct Broadcast {
    int payload = 0;
    std::set<NodeId> receivers;
  };
  std::map<NodeId, Broadcast> broadcasts;
  for (const auto& [key, message_ids] : carriers) {
    if (message_ids.size() < 2) continue;
    moved.insert(key);
    Broadcast& b = broadcasts[key.first];
    b.payload += kRawUnitBytes;
    for (int m : message_ids) {
      b.receivers.insert(
          forest.edges()[schedule.messages()[m].edge_index].edge.head);
    }
    result.units += 1;
  }
  for (const MessageSchedule::Message& message : schedule.messages()) {
    const ForestEdge& edge = forest.edges()[message.edge_index];
    int payload = 0;
    int units = 0;
    for (int u : message.unit_ids) {
      const MessageUnit& unit = schedule.units()[u];
      bool unit_moved = edge.hop_length() == 1 && !unit.is_partial &&
                        moved.contains({edge.edge.tail, unit.subject});
      if (unit_moved) continue;
      payload += unit.unit_bytes;
      ++units;
    }
    if (units == 0) continue;  // Everything moved to the broadcast.
    result.units += units;
    ChargeMessage(message.edge_index, payload, result, uj);
  }
  for (const auto& [node, broadcast] : broadcasts) {
    result.messages += 1;
    result.payload_bytes += broadcast.payload;
    result.physical_transmissions += 1;
    double tx_mj = energy_.TxUj(broadcast.payload) / 1000.0;
    result.node_energy_mj[node] += tx_mj;
    result.energy_mj += tx_mj;
    if (uj != nullptr) (*uj)[node] += energy_.TxUj(broadcast.payload);
    for (NodeId receiver : broadcast.receivers) {
      double rx_mj = energy_.RxUj(broadcast.payload) / 1000.0;
      result.node_energy_mj[receiver] += rx_mj;
      result.energy_mj += rx_mj;
      if (uj != nullptr) (*uj)[receiver] += energy_.RxUj(broadcast.payload);
    }
  }
  charge_battery();
  return result;
}

void PlanExecutor::InitializeState(const std::vector<double>& readings) {
  const MulticastForest& forest = compiled_->plan().forest();
  M2M_CHECK_EQ(static_cast<int>(readings.size()), forest.node_count());
  last_readings_ = readings;
  destination_records_.clear();
  current_aggregates_.clear();
  for (const Task& task : forest.tasks()) {
    const AggregateFunction& fn = functions_.Get(task.destination);
    std::optional<PartialRecord> acc;
    for (NodeId s : task.sources) {
      PartialRecord r = fn.PreAggregate(s, readings[s]);
      acc = acc.has_value() ? fn.Merge(*acc, r) : r;
    }
    M2M_CHECK(acc.has_value());
    destination_records_[task.destination] = *acc;
    current_aggregates_[task.destination] = fn.Evaluate(*acc);
  }
  state_initialized_ = true;
}

RoundResult PlanExecutor::RunSuppressedRound(
    const std::vector<double>& new_readings, const std::vector<bool>& changed,
    OverridePolicy policy, bool replicated_preagg) {
  return RunSuppressedRoundImpl(new_readings, changed, policy,
                                /*epsilon=*/0.0, replicated_preagg);
}

RoundResult PlanExecutor::RunThresholdSuppressedRound(
    const std::vector<double>& new_readings, double epsilon,
    OverridePolicy policy, bool replicated_preagg) {
  M2M_CHECK(state_initialized_)
      << "call InitializeState before RunThresholdSuppressedRound";
  M2M_CHECK_GE(epsilon, 0.0);
  M2M_CHECK_EQ(new_readings.size(), last_readings_.size());
  std::vector<bool> changed(new_readings.size(), false);
  for (size_t n = 0; n < new_readings.size(); ++n) {
    changed[n] = std::fabs(new_readings[n] - last_readings_[n]) > epsilon;
  }
  return RunSuppressedRoundImpl(new_readings, changed, policy, epsilon,
                                replicated_preagg);
}

RoundResult PlanExecutor::RunSuppressedRoundImpl(
    const std::vector<double>& new_readings, const std::vector<bool>& changed,
    OverridePolicy policy, double epsilon, bool replicated_preagg) {
  // Deliberately serial: override decisions are order-coupled across tasks
  // through `raw_cross` (whether a raw value already crosses an edge feeds
  // later decisions at other nodes), so task-sharding would change
  // decisions, not just schedules. Suppressed rounds are bounded by the
  // changed-source count, not the network size, so they are not on the
  // scale path the sharded full round serves.
  M2M_CHECK(state_initialized_)
      << "call InitializeState before RunSuppressedRound";
  const GlobalPlan& plan = compiled_->plan();
  const MulticastForest& forest = plan.forest();
  M2M_CHECK_EQ(static_cast<int>(new_readings.size()), forest.node_count());
  M2M_CHECK_EQ(changed.size(), new_readings.size());
  for (const Task& task : forest.tasks()) {
    M2M_CHECK(functions_.Get(task.destination).SupportsLinearDeltas())
        << "suppression requires linear-delta functions";
  }

  RoundResult result;
  result.plan_epoch = compiled_->plan_epoch();
  result.node_energy_mj.assign(forest.node_count(), 0.0);
  const OverrideBehavior behavior = BehaviorOf(policy);

  const int edge_count = static_cast<int>(forest.edges().size());
  std::vector<std::set<NodeId>> raw_cross(edge_count);
  std::map<std::pair<int, NodeId>, std::set<NodeId>> folds;
  std::map<std::pair<int, NodeId>, std::set<int>> chains;
  std::map<NodeId, std::set<NodeId>> dest_folds;
  std::map<NodeId, std::set<int>> dest_chains;
  std::map<uint64_t, bool> decision;  // Key(node, source) -> overridden?

  // True if some changed source other than `s` contributes to destination
  // `d` through edge `e`; informed policies use this to estimate whether
  // d's partial record travels regardless of the override.
  auto other_changed_contributor = [&](int e, NodeId d, NodeId s) {
    for (const SourceDestPair& pair : forest.edges()[e].pairs) {
      if (pair.destination == d && pair.source != s &&
          changed[pair.source]) {
        return true;
      }
    }
    return false;
  };

  enum class Mode { kRaw, kRawOverride, kPartial };
  for (const Task& task : forest.tasks()) {
    const NodeId d = task.destination;
    for (NodeId s : task.sources) {
      if (!changed[s]) continue;
      if (s == d) {
        dest_folds[d].insert(s);
        continue;
      }
      const std::vector<int>& route = forest.Route(SourceDestPair{s, d});
      Mode mode = Mode::kRaw;
      for (size_t i = 0; i < route.size(); ++i) {
        const int e = route[i];
        const NodeId n = forest.edges()[e].edge.tail;
        if (mode == Mode::kPartial) {
          chains[{e, d}].insert(route[i - 1]);
          continue;
        }
        if (mode == Mode::kRawOverride) {
          raw_cross[e].insert(s);
          continue;
        }
        const EdgePlan& edge_plan = plan.plan_for(e);
        if (edge_plan.TransmitsRaw(s)) {
          raw_cross[e].insert(s);
          continue;
        }
        M2M_CHECK(edge_plan.TransmitsAggregate(d));
        // Default plan folds s at n. Apply (or make) the override decision,
        // which is taken once per (node, value) and covers all destinations
        // whose pre-aggregation of s happens at n.
        auto decision_it = decision.find(Key(n, s));
        if (decision_it == decision.end()) {
          // The node compares, per the paper's heuristic, the local cost of
          // keeping the value raw against the partial records its
          // pre-aggregation would feed. Uninformed policies judge each
          // arriving value in isolation; at high change rates those
          // partials travel anyway (other sources changed too), which is
          // exactly how eager overriding backfires in Figure 7.
          int64_t default_marginal = 0;
          int64_t override_marginal = 0;
          std::set<int> override_edges;
          for (const PreAggTableEntry& entry :
               compiled_->state(n).preagg_table) {
            if (entry.source != s || entry.destination == n) continue;
            auto fe = fold_edge_.find(Key(n, entry.destination));
            M2M_CHECK(fe != fold_edge_.end());
            if (!behavior.informed ||
                !other_changed_contributor(fe->second, entry.destination,
                                           s)) {
              default_marginal += PartialUnitBytes(entry.destination);
            }
            override_edges.insert(fe->second);
          }
          for (int fold_e : override_edges) {
            bool raw_already = plan.plan_for(fold_e).TransmitsRaw(s) ||
                               raw_cross[fold_e].contains(s);
            if (!raw_already) override_marginal += kRawUnitBytes;
          }
          bool do_override =
              behavior.threshold >= 0.0 && default_marginal > 0 &&
              static_cast<double>(override_marginal) <=
                  behavior.threshold * static_cast<double>(default_marginal);
          decision_it = decision.emplace(Key(n, s), do_override).first;
          if (do_override) result.overrides += 1;
        }
        if (decision_it->second) {
          raw_cross[e].insert(s);
          // With replicated pre-aggregation state, downstream nodes still
          // hold w_{d,s} and may fold the raw value at the next
          // aggregation point; otherwise it must travel raw to the
          // destination (only n stores the functions).
          mode = replicated_preagg ? Mode::kRaw : Mode::kRawOverride;
        } else {
          folds[{e, d}].insert(s);
          mode = Mode::kPartial;
        }
      }
      if (mode == Mode::kPartial) {
        dest_chains[d].insert(route.back());
      } else {
        dest_folds[d].insert(s);
      }
    }
  }

  // Delta contents of transmitted partial units (bottom-up, memoized).
  std::map<std::pair<int, NodeId>, PartialRecord> content;
  auto compute_content = [&](auto&& self, int e, NodeId d) -> PartialRecord {
    auto memo = content.find({e, d});
    if (memo != content.end()) return memo->second;
    const AggregateFunction& fn = functions_.Get(d);
    std::optional<PartialRecord> acc;
    auto add = [&](const PartialRecord& r) {
      acc = acc.has_value() ? fn.Merge(*acc, r) : r;
    };
    auto fold_it = folds.find({e, d});
    if (fold_it != folds.end()) {
      for (NodeId s : fold_it->second) {
        add(fn.LinearDeltaPreAggregate(s,
                                       new_readings[s] - last_readings_[s]));
      }
    }
    auto chain_it = chains.find({e, d});
    if (chain_it != chains.end()) {
      for (int prev : chain_it->second) add(self(self, prev, d));
    }
    M2M_CHECK(acc.has_value());
    content[{e, d}] = *acc;
    return *acc;
  };

  // Charge transmitted units per edge, merged into one message per edge.
  // (When greedy merging has to split an edge's units to break a wait-for
  // cycle — possible only in adversarial topologies, see
  // message_cycle_test — this undercounts by one header per extra
  // message.)
  std::vector<double> battery_uj;
  std::vector<double>* uj = nullptr;
  if (battery_ != nullptr) {
    battery_uj.assign(forest.node_count(), 0.0);
    uj = &battery_uj;
  }
  for (int e = 0; e < edge_count; ++e) {
    int payload = 0;
    int units = 0;
    for (NodeId s : raw_cross[e]) {
      (void)s;
      payload += kRawUnitBytes;
      ++units;
    }
    for (NodeId d : plan.plan_for(e).agg_destinations) {
      bool transmitted = folds.contains({e, d}) || chains.contains({e, d});
      if (transmitted) {
        compute_content(compute_content, e, d);  // Materialize for chains.
        payload += PartialUnitBytes(d);
        ++units;
      }
    }
    if (units > 0) {
      result.units += units;
      ChargeMessage(e, payload, result, uj);
    }
  }
  if (battery_ != nullptr) {
    for (double& u : battery_uj) u /= 1000.0;
    battery_->ChargeRound(battery_uj);
  }

  // Apply deltas at destinations and verify maintained aggregates.
  for (const Task& task : forest.tasks()) {
    const NodeId d = task.destination;
    const AggregateFunction& fn = functions_.Get(d);
    std::optional<PartialRecord> delta;
    auto add = [&](const PartialRecord& r) {
      delta = delta.has_value() ? fn.Merge(*delta, r) : r;
    };
    auto fold_it = dest_folds.find(d);
    if (fold_it != dest_folds.end()) {
      for (NodeId s : fold_it->second) {
        add(fn.LinearDeltaPreAggregate(s,
                                       new_readings[s] - last_readings_[s]));
      }
    }
    auto chain_it = dest_chains.find(d);
    if (chain_it != dest_chains.end()) {
      for (int prev : chain_it->second) {
        add(compute_content(compute_content, prev, d));
      }
    }
    if (delta.has_value()) {
      destination_records_[d] = fn.ApplyDelta(destination_records_[d],
                                              *delta);
    }
    double value = fn.Evaluate(destination_records_[d]);
    std::unordered_map<NodeId, double> inputs;
    for (NodeId s : task.sources) inputs[s] = new_readings[s];
    double direct = fn.Direct(inputs);
    double deviation = std::fabs(value - direct);
    result.max_abs_error = std::max(result.max_abs_error, deviation);
    double allowed =
        (epsilon > 0.0 ? fn.SuppressionErrorBound(epsilon) : 0.0) +
        kSuppressedTolerance * std::max({1.0, std::fabs(value),
                                         std::fabs(direct)});
    M2M_CHECK_LE(deviation, allowed)
        << "destination " << d << " drifted past its suppression bound";
    current_aggregates_[d] = value;
    result.destination_values[d] = value;

    // Suppression-aware coverage: every live source is covered — the ones
    // that stayed silent are represented by their last transmitted value.
    RoundResult::DestinationCoverage coverage;
    coverage.expected = static_cast<int>(task.sources.size());
    coverage.covered = coverage.expected;
    for (NodeId s : task.sources) {
      if (changed[s]) {
        ++coverage.transmitted;
      } else {
        ++coverage.suppressed;
      }
    }
    coverage.coverage = 1.0;
    result.destination_coverage[d] = coverage;
  }

  // Commit the new readings of changed sources.
  for (size_t n = 0; n < new_readings.size(); ++n) {
    if (changed[n]) last_readings_[n] = new_readings[n];
  }

  if (metrics_ != nullptr) {
    std::set<NodeId> sources;
    for (const Task& task : forest.tasks()) {
      sources.insert(task.sources.begin(), task.sources.end());
    }
    int64_t changed_count = 0;
    for (NodeId s : sources) {
      if (changed[s]) ++changed_count;
    }
    metrics_->Add(handles_.rounds, 1);
    metrics_->Add(handles_.changed_sources, changed_count);
    metrics_->Add(handles_.suppressed_sources,
                  static_cast<int64_t>(sources.size()) - changed_count);
    metrics_->Add(handles_.overrides, result.overrides);
    metrics_->Add(handles_.payload_bytes, result.payload_bytes);
    metrics_->Add(handles_.messages, result.messages);
  }
  return result;
}

void PlanExecutor::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  handles_.rounds = metrics_->Counter("suppress.rounds");
  handles_.changed_sources = metrics_->Counter("suppress.changed_sources");
  handles_.suppressed_sources =
      metrics_->Counter("suppress.suppressed_sources");
  handles_.overrides = metrics_->Counter("suppress.overrides");
  handles_.payload_bytes = metrics_->Counter("suppress.payload_bytes");
  handles_.messages = metrics_->Counter("suppress.messages");
}

int64_t PlanExecutor::CountReplicatedPreAggEntries() const {
  const GlobalPlan& plan = compiled_->plan();
  const MulticastForest& forest = plan.forest();
  int64_t extra = 0;
  for (const Task& task : forest.tasks()) {
    for (NodeId s : task.sources) {
      if (s == task.destination) continue;
      const std::vector<int>& route =
          forest.Route(SourceDestPair{s, task.destination});
      bool carried_raw = true;
      for (size_t i = 0; i < route.size(); ++i) {
        const EdgePlan& edge_plan = plan.plan_for(route[i]);
        if (carried_raw && edge_plan.TransmitsRaw(s)) continue;
        if (carried_raw) {
          // Folded at tail(route[i]); every later tail plus the
          // destination needs a replicated w_{d,s} entry.
          extra += static_cast<int64_t>(route.size() - i);
        }
        carried_raw = false;
      }
      // Values raw all the way already have the entry at the destination.
    }
  }
  return extra;
}

}  // namespace m2m
