#ifndef M2M_SIM_BASE_STATION_H_
#define M2M_SIM_BASE_STATION_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "routing/path_system.h"
#include "sim/energy_model.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Outcome of one round of out-of-network control.
struct BaseStationRoundResult {
  double energy_mj = 0.0;
  double uplink_mj = 0.0;    ///< Collecting readings at the base station.
  double downlink_mj = 0.0;  ///< Delivering control signals to destinations.
  int64_t messages = 0;
  int64_t payload_bytes = 0;
  std::vector<double> node_energy_mj;
};

/// Picks a deployment-realistic base station: the node closest to the
/// area's origin corner (base stations sit at the edge of a deployment,
/// wired for power and backhaul).
NodeId PickBaseStation(const Topology& topology);

/// The paper's out-of-network alternative (section 1): every source ships
/// its raw reading to the base station over a collection tree (each
/// distinct source once, messages merged per tree edge); the base station
/// evaluates all control functions and unicasts each result back to its
/// destination (result units merged per edge of the downlink tree).
///
/// This is the strongest reasonable version of the strawman: uplink shares
/// raw values across all functions and both directions merge messages. Its
/// remaining weaknesses are exactly the ones the paper names — round trips
/// whose length grows with network size, and a traffic bottleneck at the
/// nodes around the base station (visible in node_energy_mj).
BaseStationRoundResult SimulateBaseStationRound(const Topology& topology,
                                                const PathSystem& paths,
                                                const Workload& workload,
                                                NodeId base_station,
                                                const EnergyModel& energy);

}  // namespace m2m

#endif  // M2M_SIM_BASE_STATION_H_
