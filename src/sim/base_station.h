#ifndef M2M_SIM_BASE_STATION_H_
#define M2M_SIM_BASE_STATION_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "routing/path_system.h"
#include "sim/energy_model.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Outcome of one round of out-of-network control.
struct BaseStationRoundResult {
  double energy_mj = 0.0;
  double uplink_mj = 0.0;    ///< Collecting readings at the base station.
  double downlink_mj = 0.0;  ///< Delivering control signals to destinations.
  int64_t messages = 0;
  int64_t payload_bytes = 0;
  std::vector<double> node_energy_mj;
};

/// Picks a deployment-realistic base station: the node closest to the
/// area's origin corner (base stations sit at the edge of a deployment,
/// wired for power and backhaul).
NodeId PickBaseStation(const Topology& topology);

/// The paper's out-of-network alternative (section 1): every source ships
/// its raw reading to the base station over a collection tree (each
/// distinct source once, messages merged per tree edge); the base station
/// evaluates all control functions and unicasts each result back to its
/// destination (result units merged per edge of the downlink tree).
///
/// This is the strongest reasonable version of the strawman: uplink shares
/// raw values across all functions and both directions merge messages. Its
/// remaining weaknesses are exactly the ones the paper names — round trips
/// whose length grows with network size, and a traffic bottleneck at the
/// nodes around the base station (visible in node_energy_mj).
BaseStationRoundResult SimulateBaseStationRound(const Topology& topology,
                                                const PathSystem& paths,
                                                const Workload& workload,
                                                NodeId base_station,
                                                const EnergyModel& energy);

/// The base station's accumulated picture of network health, built solely
/// from in-network suspicion reports (runtime/detector.h) — never from the
/// fault schedule. Two beliefs fall out of the reports:
///
///   - believed failed links: the union of reported (monitor, neighbor)
///     pairs, normalized to undirected links;
///   - believed dead nodes: nodes unreachable from the base station in the
///     deployment topology minus the believed-failed links. This inference
///     is sound under the deployment invariant that survivors stay
///     connected (fault_schedule.h): a node every path to which crosses a
///     suspected link can only be a node whose links all failed — i.e. a
///     dead node, since its neighbors each reported their link to it.
///
/// Under *mobility* the survivors-stay-connected invariant no longer holds:
/// a drifting cluster can carry a whole region out of range, leaving nodes
/// unreachable yet alive. `set_partition_aware(true)` switches the
/// unreachability inference to component analysis: an unreachable node is
/// believed *dead* only when it is isolated even in the unmasked belief
/// graph restricted to unreachable nodes (a singleton component — every one
/// of its own links was reported failed, which only total radio silence or
/// death produces). Unreachable nodes that still form a multi-node island
/// are believed *partitioned*: alive, holding state, and expected to merge
/// back later. The distinction is what lets the runtime (a) report degraded
/// coverage with a partition cause instead of a stale "complete", and (b)
/// force full-image reconciliation when the island reconnects.
///
/// Each change to the belief set bumps `revision`, which is the base
/// station's trigger to re-plan and open a new plan epoch.
class SuspicionLedger {
 public:
  SuspicionLedger(const Topology* topology, NodeId base_station);

  /// Enables partition-aware unreachability classification. Off (legacy)
  /// every unreachable node is believed dead, which is exactly right under
  /// the static fault model and keeps pre-mobility runs byte-identical.
  void set_partition_aware(bool aware) {
    if (partition_aware_ == aware) return;
    partition_aware_ = aware;
    Recompute();
  }
  bool partition_aware() const { return partition_aware_; }

  /// Records one reported suspicion. Returns true iff it was new (its
  /// undirected link was not yet believed failed).
  bool RecordSuspicion(NodeId monitor, NodeId neighbor);

  /// Retracts a previously recorded suspicion — the monitor readmitted the
  /// neighbor after probation (detector hysteresis). Returns true iff the
  /// undirected link was believed failed; beliefs and dead-node inference
  /// are recomputed and `revision` bumps, triggering a re-plan that routes
  /// over the healed link again.
  bool RecordReadmission(NodeId monitor, NodeId neighbor);

  /// Undirected believed-failed links, sorted (lo, hi).
  const std::vector<std::pair<NodeId, NodeId>>& believed_failed_links()
      const {
    return links_;
  }

  /// Nodes the base station believes dead, sorted by id.
  const std::vector<NodeId>& believed_dead() const { return dead_; }

  /// Declares which nodes the base station's in-band energy prediction
  /// considers exhaustion candidates (predicted residual at or below the
  /// classification threshold). Pure annotation: beliefs, topology masking
  /// and `revision()` are untouched — classification refines the *cause*
  /// of a believed death, never the death itself.
  void SetEnergyExhaustionCandidates(std::set<NodeId> candidates) {
    energy_candidates_ = std::move(candidates);
  }

  /// Believed-dead nodes classified as energy-exhausted (the intersection
  /// of `believed_dead()` with the declared candidates), sorted by id.
  /// Distinct from crash deaths (dead, not a candidate) and partitions
  /// (believed alive but unreachable).
  std::vector<NodeId> believed_energy_dead() const {
    std::vector<NodeId> result;
    for (NodeId node : dead_) {
      if (energy_candidates_.contains(node)) result.push_back(node);
    }
    return result;
  }

  /// Nodes the base station believes alive but partitioned away (always
  /// empty unless partition-aware), sorted by id.
  const std::vector<NodeId>& believed_partitioned() const {
    return partitioned_;
  }

  /// Number of disconnected multi-node islands currently believed to exist
  /// beyond the base station's region (0 when no partition is believed).
  int partition_region_count() const { return partition_regions_; }

  /// The failure-masked topology the base station plans against. Both dead
  /// and partitioned nodes are masked out: the planner must not route
  /// through either, whatever the cause.
  Topology BelievedTopology() const;

  /// Bumped on every belief change; equal revisions mean equal beliefs.
  int revision() const { return revision_; }

 private:
  void Recompute();

  const Topology* topology_;
  NodeId base_;
  bool partition_aware_ = false;
  std::set<std::pair<NodeId, NodeId>> reported_;  // Normalized (lo, hi).
  std::set<NodeId> energy_candidates_;
  std::vector<std::pair<NodeId, NodeId>> links_;
  std::vector<NodeId> dead_;
  std::vector<NodeId> partitioned_;
  int partition_regions_ = 0;
  int revision_ = 0;
};

}  // namespace m2m

#endif  // M2M_SIM_BASE_STATION_H_
