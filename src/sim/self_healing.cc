#include "sim/self_healing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/crc32.h"
#include "event/event_runtime.h"
#include "event/transport.h"
#include "plan/dissemination.h"
#include "plan/serialization.h"
#include "routing/lifetime_forest.h"
#include "routing/multicast.h"
#include "runtime/wire_functions.h"
#include "sim/fault_schedule.h"

namespace m2m {

namespace {

constexpr int64_t kUnreachableWeight = std::numeric_limits<int64_t>::max();

/// Maps ControlMessage::Kind (by ordinal: report, reportack, image, bump,
/// ack) to the trace's ControlKind.
obs::ControlKind ToTraceKind(int kind) {
  switch (kind) {
    case 0:
      return obs::ControlKind::kReport;
    case 1:
      return obs::ControlKind::kReportAck;
    case 2:
      return obs::ControlKind::kImage;
    case 3:
      return obs::ControlKind::kBump;
    case 4:
      return obs::ControlKind::kInstallAck;
  }
  return obs::ControlKind::kReport;
}

template <typename T>
bool Contains(const std::vector<T>& values, const T& value) {
  return std::find(values.begin(), values.end(), value) != values.end();
}

}  // namespace

SelfHealingRuntime::SelfHealingRuntime(const Topology& topology,
                                       const Workload& workload,
                                       NodeId base_station,
                                       const SelfHealingOptions& options)
    : topology_(&topology),
      base_(base_station),
      options_(options),
      original_workload_(workload),
      workload_(workload),
      plan_(BuildPlan(std::make_shared<MulticastForest>(PathSystem(topology),
                                                        workload.tasks),
                      workload.functions)),
      compiled_(std::make_shared<CompiledPlan>(CompiledPlan::Compile(
          plan_, workload.functions, MergePolicy::kGreedyMergePerEdge,
          /*plan_epoch=*/0))),
      images_(EncodeAllNodeStates(*compiled_, workload.functions)),
      network_(*compiled_, workload.functions),
      detector_(topology, options.detector),
      ledger_(&topology, base_station),
      control_paths_(topology),
      deployment_paths_(topology) {
  M2M_CHECK(base_ >= 0 && base_ < topology.node_count());
  M2M_CHECK(options_.control_hop_attempts >= 1 &&
            options_.control_hop_attempts <= 16)
      << "control_hop_attempts must fit the per-hop attempt namespace";
  M2M_CHECK_GE(options_.resend_after_rounds, 1);
  ledger_.set_partition_aware(options_.partition_aware);
  epoch_opened_round_[0] = -1;
  if (options_.energy.battery_aware) {
    // The base station is wall-powered: a base whose battery could die
    // would take the whole control loop with it, which is a deployment
    // error, not a fault to heal.
    BatteryOptions battery_options = options_.energy.battery;
    if (!Contains(battery_options.immortal_nodes, base_)) {
      battery_options.immortal_nodes.push_back(base_);
    }
    battery_ = BatteryLedger(topology.node_count(), battery_options);
    predicted_ = BatteryLedger(topology.node_count(), battery_options);
    network_.set_track_node_energy(true);
    predicted_drain_mj_ =
        CompiledRoundEnergyMj(*compiled_, options_.energy.model);
    rotation_trigger_level_ = options_.energy.rotation_threshold;
  }
}

void SelfHealingRuntime::SubmitWorkload(const Workload& workload) {
  original_workload_ = workload;
  ++workload_revision_;
}

void SelfHealingRuntime::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  network_.set_metrics(metrics);
  if (metrics_ == nullptr) return;
  handles_.probe_tx = metrics_->Counter("heal.probe_transmissions");
  handles_.probe_confirms = metrics_->Counter("heal.probe_confirmations");
  handles_.suspicions = metrics_->Counter("heal.suspicions_raised");
  handles_.control_hop_attempts =
      metrics_->Counter("heal.control_hop_attempts");
  handles_.control_hops = metrics_->Counter("heal.control_hops");
  handles_.control_delivered =
      metrics_->Counter("heal.control_messages_delivered");
  handles_.control_bytes = metrics_->Counter("heal.control_payload_bytes");
  handles_.replans = metrics_->Counter("heal.replans");
  handles_.epoch_gauge = metrics_->Gauge("heal.base_epoch");
  handles_.images_queued = metrics_->Counter("heal.images_queued");
  handles_.bumps_queued = metrics_->Counter("heal.bumps_queued");
  handles_.edges_reused = metrics_->Counter("heal.replan_edges_reused");
  handles_.edges_reoptimized =
      metrics_->Counter("heal.replan_edges_reoptimized");
  handles_.pending_installs = metrics_->Gauge("heal.pending_installs");
  handles_.readmissions = metrics_->Counter("readmit.readmissions");
  handles_.probation_rounds = metrics_->Counter("readmit.probation_rounds");
  handles_.epoch_reconciliations =
      metrics_->Counter("readmit.epoch_reconciliations");
  handles_.believed_partitioned =
      metrics_->Gauge("partition.believed_partitioned");
  handles_.partition_events = metrics_->Counter("partition.partition_events");
  handles_.merge_events = metrics_->Counter("partition.merge_events");
  handles_.merge_reconciliations =
      metrics_->Counter("partition.merge_reconciliations");
  handles_.epoch_divergences =
      metrics_->Counter("partition.epoch_divergences");
  handles_.degraded_destination_rounds =
      metrics_->Counter("partition.degraded_destination_rounds");
  // Registered only in battery mode: legacy runs keep their metrics JSON
  // byte-identical (no zero-valued energy.* entries appear).
  if (options_.energy.battery_aware) {
    handles_.energy_rounds = metrics_->Gauge("energy.rounds_charged");
    handles_.energy_drain = metrics_->Gauge("energy.total_drain_uj");
    handles_.energy_depleted = metrics_->Gauge("energy.depleted_nodes");
    handles_.energy_dead = metrics_->Gauge("energy.believed_energy_dead");
    handles_.energy_rotations = metrics_->Counter("energy.rotations");
    handles_.energy_min_residual =
        metrics_->Gauge("energy.min_residual_permille");
    handles_.energy_exhaustions =
        metrics_->Counter("energy.exhaustion_deaths");
  }
}

int SelfHealingRuntime::pending_installs() const {
  int pending = 0;
  for (const auto& [node, install] : pending_installs_) {
    if (!install.acked) ++pending;
  }
  return pending;
}

std::vector<std::vector<NodeId>> SelfHealingRuntime::SegmentsFor(
    NodeId node) const {
  std::vector<std::vector<NodeId>> segments;
  for (const OutgoingMessageEntry& entry :
       compiled_->state(node).outgoing_table) {
    segments.push_back(entry.segment);
  }
  return segments;
}

SelfHealingRoundResult SelfHealingRuntime::RunRound(
    int round, const std::vector<double>& readings,
    const LossyLinkModel& physical, EventTrace* trace) {
  M2M_CHECK(physical.attempt_delivers != nullptr);
  SelfHealingRoundResult result;

  // Battery mode: gate the physical layer on battery state as of *round
  // start* (a node depleting mid-round still finishes the round it paid
  // for). A depleted node neither transmits nor receives and runs nothing,
  // so — through the unchanged detector/ledger machinery below — energy
  // exhaustion presents exactly like a crash: neighbors see silence,
  // suspect, report, and the base replans around the corpse. The snapshot
  // is value-captured: ChargeBatteries below mutates the ledger without
  // affecting this round's oracle.
  LossyLinkModel gated;
  const LossyLinkModel* model = &physical;
  if (options_.energy.battery_aware) {
    std::vector<bool> depleted(static_cast<size_t>(battery_.node_count()));
    for (NodeId n = 0; n < battery_.node_count(); ++n) {
      depleted[n] = battery_.depleted(n);
    }
    gated = physical;
    gated.attempt_delivers = [depleted,
                              inner = physical.attempt_delivers](
                                 NodeId from, NodeId to, int attempt) {
      if (depleted[from] || depleted[to]) return false;
      return inner(from, to, attempt);
    };
    if (physical.node_alive != nullptr) {
      gated.node_alive = [depleted,
                          inner = physical.node_alive](NodeId node) {
        return !depleted[node] && inner(node);
      };
    } else {
      gated.node_alive = [depleted](NodeId node) {
        return !depleted[node];
      };
    }
    model = &gated;
  }

  // 1. Data round over the installed (possibly mixed-epoch) images.
  if (options_.use_event_runtime) {
    event::EventNetwork engine(network_);
    engine.set_metrics(network_.metrics());
    event::RoundCompatTransport transport(*model);
    result.data = engine.RunCompatRound(readings, transport, options_.retry,
                                        {}, trace, round);
  } else {
    result.data = network_.RunRoundLossy(readings, *model, options_.retry,
                                         {}, trace);
  }
  if (options_.energy.battery_aware) {
    ChargeBatteries(round, result, trace);
  }

  // 2. In-band failure detection: heartbeats from the round's traffic,
  // probes for silent neighbors.
  FailureDetector::RoundReport detection = detector_.ObserveRound(
      round, result.data.heard, model->attempt_delivers,
      model->node_alive);
  result.probe_transmissions = detection.probe_transmissions;
  result.probe_confirmations = detection.probe_confirmations;
  result.new_suspicions = static_cast<int>(detection.new_suspicions.size());
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.probe_tx, detection.probe_transmissions);
    metrics_->Add(handles_.probe_confirms, detection.probe_confirmations);
  }
  result.readmissions = static_cast<int>(detection.readmitted.size());
  for (const SuspectedLink& suspicion : detection.new_suspicions) {
    MonitorOutbox& outbox = monitor_outbox_[suspicion.monitor];
    outbox.pending.emplace(suspicion.neighbor, suspicion.round);
    // A re-suspicion supersedes any queued retraction of the same link, so
    // at most one verdict per neighbor is ever in a report.
    std::erase_if(outbox.retractions, [&suspicion](const auto& entry) {
      return entry.first == suspicion.neighbor;
    });
    if (metrics_ != nullptr) {
      metrics_->AddNode(handles_.suspicions, suspicion.monitor, 1);
    }
    if (trace != nullptr) {
      trace->Suspect(round, suspicion.monitor, suspicion.neighbor);
    }
  }
  for (const SuspectedLink& readmit : detection.readmitted) {
    MonitorOutbox& outbox = monitor_outbox_[readmit.monitor];
    // If the suspicion never reached the base it needs no retraction, but
    // an unacked report may still have been *delivered* (ack lost), so the
    // retraction is sent regardless; RecordReadmission of a link the base
    // never believed failed is a harmless no-op.
    std::erase_if(outbox.pending, [&readmit](const auto& entry) {
      return entry.first == readmit.neighbor;
    });
    outbox.retractions.emplace(readmit.neighbor, readmit.round);
    if (metrics_ != nullptr) {
      metrics_->AddNode(handles_.readmissions, readmit.monitor, 1);
    }
  }
  if (metrics_ != nullptr && detector_.probation_link_count() > 0) {
    // One count per link per round spent in probation.
    metrics_->Add(handles_.probation_rounds,
                  detector_.probation_link_count());
  }

  // 3. Control plane: reports toward the base station, plan images / epoch
  // bumps / install acks the other way.
  AdvanceControlPlane(round, *model, result, trace);
  // 3b. Battery mode: refresh the base station's in-band energy beliefs
  // (exhaustion classification, proactive-rotation trigger) before the
  // replan decision they may feed.
  if (options_.energy.battery_aware) {
    UpdateEnergyBeliefs(round, result, trace);
  }
  // 4. Any ledger change opens a new epoch and queues its dissemination...
  MaybeReplan(round, result, trace);
  // ...which gets its first advance within the same round (messages already
  // advanced this round are skipped, so nothing moves twice).
  AdvanceControlPlane(round, *model, result, trace);

  if (options_.partition_aware) {
    ComputePartitionStatus(result);
  }

  result.base_epoch = epoch_;
  result.pending_installs = pending_installs();
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.control_hop_attempts, result.control_hop_attempts);
    metrics_->Add(handles_.control_hops, result.control_hops_crossed);
    metrics_->Add(handles_.control_delivered,
                  result.control_messages_delivered);
    metrics_->Add(handles_.control_bytes, result.control_payload_bytes);
    metrics_->Set(handles_.epoch_gauge, epoch_);
    metrics_->Set(handles_.pending_installs, result.pending_installs);
  }
  return result;
}

void SelfHealingRuntime::QueueControl(ControlMessage::Kind kind,
                                      NodeId origin, NodeId target,
                                      std::vector<uint8_t> payload,
                                      uint32_t epoch) {
  ControlMessage message;
  message.kind = kind;
  message.origin = origin;
  message.target = target;
  message.holder = origin;
  message.payload = std::move(payload);
  message.epoch = epoch;
  message.seq = next_seq_++;
  in_flight_.push_back(std::move(message));
}

void SelfHealingRuntime::RefreshControlPaths() {
  // Control routing avoids every link any monitor suspects (plus the base
  // station's believed-failed links, a subset once reports arrive).
  std::set<std::pair<NodeId, NodeId>> suspected;
  for (const SuspectedLink& s : detector_.suspicions()) {
    suspected.emplace(std::min(s.monitor, s.neighbor),
                      std::max(s.monitor, s.neighbor));
  }
  for (const std::pair<NodeId, NodeId>& link :
       ledger_.believed_failed_links()) {
    suspected.insert(link);
  }
  // Compare the set, not its size: a readmission paired with a fresh
  // suspicion keeps the count constant while the routes must change.
  if (suspected == control_paths_suspected_) return;
  control_paths_suspected_ = suspected;
  std::vector<std::pair<NodeId, NodeId>> links(suspected.begin(),
                                               suspected.end());
  control_paths_ =
      PathSystem(Topology::WithFailures(*topology_, links, {}));
}

void SelfHealingRuntime::AdvanceControlPlane(int round,
                                             const LossyLinkModel& physical,
                                             SelfHealingRoundResult& result,
                                             EventTrace* trace) {
  RefreshControlPaths();

  // (a) Emit / re-emit suspicion reports. The base station's own
  // suspicions go straight into the ledger (it is the base).
  for (auto& [monitor, outbox] : monitor_outbox_) {
    if (outbox.pending.empty() && outbox.retractions.empty()) continue;
    if (monitor == base_) {
      for (const auto& [neighbor, raised] : outbox.pending) {
        ledger_.RecordSuspicion(monitor, neighbor);
      }
      for (const auto& [neighbor, readmit_round] : outbox.retractions) {
        ledger_.RecordReadmission(monitor, neighbor);
      }
      outbox.pending.clear();
      outbox.retractions.clear();
      continue;
    }
    if (outbox.last_sent_round >= 0 &&
        round - outbox.last_sent_round < options_.resend_after_rounds) {
      continue;
    }
    // Drop any stale in-flight copy (its holder may have died) and re-emit
    // the monitor's full pending set.
    const NodeId origin = monitor;
    std::erase_if(in_flight_, [origin](const ControlMessage& m) {
      return m.kind == ControlMessage::Kind::kReport && m.origin == origin;
    });
    wire::SuspicionReport report;
    report.monitor = monitor;
    report.entries.assign(outbox.pending.begin(), outbox.pending.end());
    report.retractions.assign(outbox.retractions.begin(),
                              outbox.retractions.end());
    QueueControl(ControlMessage::Kind::kReport, monitor, base_,
                 wire::EncodeSuspicionReport(report), 0);
    outbox.last_sent_round = round;
    outbox.report_in_flight = true;
  }

  // (b) Emit / re-emit dissemination to unacked targets of this epoch.
  for (auto& [node, pending] : pending_installs_) {
    if (pending.acked) continue;
    if (pending.last_sent_round >= 0 &&
        round - pending.last_sent_round < options_.resend_after_rounds) {
      continue;
    }
    const NodeId target = node;
    std::erase_if(in_flight_, [target](const ControlMessage& m) {
      return (m.kind == ControlMessage::Kind::kImage ||
              m.kind == ControlMessage::Kind::kBump) &&
             m.target == target;
    });
    if (pending.is_bump) {
      QueueControl(ControlMessage::Kind::kBump, base_, node,
                   wire::EncodeEpochBump(epoch_), epoch_);
    } else {
      // Full images cross many hops; the CRC32 frame lets the installer
      // prove the bytes arrived intact before decoding them.
      QueueControl(ControlMessage::Kind::kImage, base_, node,
                   FrameNodeImage(images_[node]), epoch_);
    }
    pending.last_sent_round = round;
    pending.in_flight = true;
  }

  // (c) Advance every message as many hops as deliver this round. A
  // delivery can append follow-up messages (report acks, install acks),
  // which this index walk then also advances — an ack can travel the same
  // round its trigger arrived.
  std::vector<size_t> delivered;
  for (size_t i = 0; i < in_flight_.size(); ++i) {
    if (in_flight_[i].last_advanced_round == round) continue;
    in_flight_[i].last_advanced_round = round;
    while (in_flight_[i].holder != in_flight_[i].target) {
      const NodeId holder = in_flight_[i].holder;
      const NodeId target = in_flight_[i].target;
      // Prefer the believed topology; when it offers no route, fall back
      // to the deployment route. The message with no believed route may be
      // the very report that corrects the belief (a merged monitor
      // retracting the cut it sits behind), and every hop is still gated
      // by the physical layer below.
      const PathSystem& paths =
          control_paths_.PathWeight(holder, target) == kUnreachableWeight
              ? deployment_paths_
              : control_paths_;
      if (paths.PathWeight(holder, target) == kUnreachableWeight) {
        break;  // Physically severed deployment; retry next round.
      }
      const NodeId next = paths.NextHop(holder, target);
      int attempt_base = 0;
      switch (in_flight_[i].kind) {
        case ControlMessage::Kind::kReport:
        case ControlMessage::Kind::kReportAck:
          attempt_base = 2000;
          break;
        case ControlMessage::Kind::kImage:
        case ControlMessage::Kind::kBump:
          attempt_base = 3000;
          break;
        case ControlMessage::Kind::kAck:
          attempt_base = 4000;
          break;
      }
      attempt_base += (in_flight_[i].seq % 60) * 16;
      bool crossed = false;
      for (int k = 1; k <= options_.control_hop_attempts; ++k) {
        result.control_hop_attempts += 1;
        if (physical.attempt_delivers(holder, next, attempt_base + k)) {
          crossed = true;
          break;
        }
      }
      if (!crossed) break;  // Stalled at this hop; resume next round.
      result.control_hops_crossed += 1;
      in_flight_[i].holder = next;
    }
    if (in_flight_[i].holder == in_flight_[i].target) {
      result.control_messages_delivered += 1;
      result.control_payload_bytes +=
          static_cast<int64_t>(in_flight_[i].payload.size());
      // Deliveries can push into in_flight_ (reallocation): copy first.
      ControlMessage message = in_flight_[i];
      delivered.push_back(i);
      if (trace != nullptr) {
        trace->Control(round, ToTraceKind(static_cast<int>(message.kind)),
                       message.origin, message.target,
                       message.payload.size());
      }
      DeliverControl(message, round, trace);
    }
  }
  for (auto it = delivered.rbegin(); it != delivered.rend(); ++it) {
    in_flight_.erase(in_flight_.begin() + static_cast<ptrdiff_t>(*it));
  }
}

void SelfHealingRuntime::DeliverControl(const ControlMessage& message,
                                        int round, EventTrace* /*trace*/) {
  switch (message.kind) {
    case ControlMessage::Kind::kReport: {
      auto report = wire::TryDecodeSuspicionReport(message.payload);
      M2M_CHECK(report.has_value()) << "malformed suspicion report";
      for (const auto& [neighbor, raised] : report->entries) {
        ledger_.RecordSuspicion(report->monitor, neighbor);
      }
      for (const auto& [neighbor, readmit_round] : report->retractions) {
        ledger_.RecordReadmission(report->monitor, neighbor);
      }
      // Ack echoes the report so the monitor knows which entries landed.
      QueueControl(ControlMessage::Kind::kReportAck, base_, report->monitor,
                   message.payload, 0);
      break;
    }
    case ControlMessage::Kind::kReportAck: {
      auto report = wire::TryDecodeSuspicionReport(message.payload);
      M2M_CHECK(report.has_value()) << "malformed report ack";
      MonitorOutbox& outbox = monitor_outbox_[report->monitor];
      for (const auto& entry : report->entries) {
        outbox.pending.erase(entry);
        // The ack proves the base recorded this suspicion. If the monitor
        // has since readmitted the link, the acked verdict is already
        // stale — without a fresh retraction a late-delivered report would
        // poison the ledger for good (the monitor otherwise has nothing
        // left queued to correct it).
        if (!detector_.Suspects(report->monitor, entry.first)) {
          outbox.retractions.emplace(entry.first, round);
        }
      }
      for (const auto& entry : report->retractions) {
        outbox.retractions.erase(entry);
      }
      outbox.report_in_flight = false;
      break;
    }
    case ControlMessage::Kind::kImage: {
      if (message.epoch != epoch_) break;  // Superseded mid-flight.
      std::optional<std::vector<uint8_t>> image =
          TryOpenCrc32Frame(message.payload);
      M2M_CHECK(image.has_value())
          << "plan image for node " << message.target
          << " failed its CRC32 frame check";
      if (!network_.InstallNodeImage(message.target, *image,
                                     SegmentsFor(message.target))) {
        RecordEpochDivergence(message.target);
        break;  // No ack: the install stays pending for the next epoch.
      }
      QueueControl(ControlMessage::Kind::kAck, message.target, base_,
                   wire::EncodeInstallAck(message.target, message.epoch),
                   message.epoch);
      break;
    }
    case ControlMessage::Kind::kBump: {
      auto epoch = wire::TryDecodeEpochBump(message.payload);
      M2M_CHECK(epoch.has_value()) << "malformed epoch bump";
      if (*epoch != epoch_) break;  // Superseded mid-flight.
      // The bump re-stamps tables the node already holds: only 5 bytes
      // traveled, but the install path is the same as for a full image.
      if (!network_.InstallNodeImage(message.target, images_[message.target],
                                     SegmentsFor(message.target))) {
        RecordEpochDivergence(message.target);
        break;
      }
      QueueControl(ControlMessage::Kind::kAck, message.target, base_,
                   wire::EncodeInstallAck(message.target, *epoch), *epoch);
      break;
    }
    case ControlMessage::Kind::kAck: {
      auto ack = wire::TryDecodeInstallAck(message.payload);
      M2M_CHECK(ack.has_value()) << "malformed install ack";
      if (ack->second != epoch_) break;  // Ack for a superseded epoch.
      auto it = pending_installs_.find(ack->first);
      if (it != pending_installs_.end()) {
        it->second.acked = true;
        it->second.in_flight = false;
      }
      break;
    }
  }
}

void SelfHealingRuntime::RecordEpochDivergence(NodeId node) {
  foreign_epoch_max_ =
      std::max(foreign_epoch_max_, network_.plan_epoch(node));
  epoch_divergence_pending_ = true;
  diverged_nodes_.insert(node);
  if (metrics_ != nullptr) {
    metrics_->AddNode(handles_.epoch_divergences, node, 1);
  }
}

void SelfHealingRuntime::RebuildBelievedWorkload() {
  workload_ = original_workload_;
  if (!options_.partition_aware) {
    // Believed-dead nodes stop being sources (paper section 3: membership
    // changes shrink the workload, then the plan is patched locally). The
    // believed workload is recomputed from the original on every belief
    // change, so a readmitted node resumes as a source.
    for (NodeId dead : ledger_.believed_dead()) {
      for (const Task& task : std::vector<Task>(workload_.tasks)) {
        if (Contains(task.sources, dead)) {
          workload_ = WithSourceRemoved(workload_, dead, task.destination);
        }
      }
    }
    return;
  }
  // Partition-aware: unreachable is dead OR partitioned, and a partition
  // can swallow a task whole — its destination, or its every source —
  // which WithSourceRemoved cannot express (it forbids emptying a task).
  // Filter the tasks directly: drop tasks with an unreachable destination,
  // strip unreachable sources, drop tasks left without sources. The
  // dropped tasks are not forgotten — they live on in original_workload_
  // and in the round result's partition-status overlay, and come back
  // verbatim when the island merges.
  std::set<NodeId> unreachable(ledger_.believed_dead().begin(),
                               ledger_.believed_dead().end());
  unreachable.insert(ledger_.believed_partitioned().begin(),
                     ledger_.believed_partitioned().end());
  if (unreachable.empty()) return;
  Workload pruned;
  for (size_t i = 0; i < workload_.tasks.size(); ++i) {
    Task task = workload_.tasks[i];
    FunctionSpec spec = workload_.specs[i];
    if (unreachable.contains(task.destination)) continue;
    std::erase_if(task.sources, [&unreachable](NodeId s) {
      return unreachable.contains(s);
    });
    std::erase_if(spec.weights, [&unreachable](const auto& entry) {
      return unreachable.contains(entry.first);
    });
    if (task.sources.empty()) continue;
    pruned.tasks.push_back(std::move(task));
    pruned.specs.push_back(std::move(spec));
  }
  pruned.RebuildFunctions();
  workload_ = std::move(pruned);
}

void SelfHealingRuntime::MaybeReplan(int round,
                                     SelfHealingRoundResult& result,
                                     EventTrace* trace) {
  if (ledger_.revision() == ledger_revision_applied_ &&
      workload_revision_ == workload_revision_applied_ &&
      !epoch_divergence_pending_ && !energy_rotation_pending_) {
    return;
  }
  ledger_revision_applied_ = ledger_.revision();
  workload_revision_applied_ = workload_revision_;
  epoch_divergence_pending_ = false;
  const bool energy_rotation = energy_rotation_pending_;
  energy_rotation_pending_ = false;

  RebuildBelievedWorkload();
  // Nodes leaving the believed-dead set rebooted with whatever epoch they
  // last installed; their actual tables are unknown to the image diff
  // below, so they are forced a full image (lineage reconciliation:
  // higher epoch wins, the rejoiner re-syncs).
  std::vector<NodeId> readmitted_nodes;
  for (NodeId node : believed_dead_applied_) {
    if (!Contains(ledger_.believed_dead(), node)) {
      readmitted_nodes.push_back(node);
    }
  }
  believed_dead_applied_ = ledger_.believed_dead();
  // Nodes leaving the believed-partitioned set merged back after running
  // (possibly many) rounds on their own — a rejoin in all but name. Each
  // gets the same treatment as a readmitted rebooter: a forced full
  // CRC-framed image, counted as a merge reconciliation.
  std::vector<NodeId> merged_nodes;
  for (NodeId node : believed_partitioned_applied_) {
    if (!Contains(ledger_.believed_partitioned(), node) &&
        !Contains(ledger_.believed_dead(), node)) {
      merged_nodes.push_back(node);
    }
  }
  believed_partitioned_applied_ = ledger_.believed_partitioned();
  // Nodes that rejected an install with a higher epoch (the far side of a
  // split replanned independently) are likewise forced a full image under
  // the reconciling epoch below.
  std::vector<NodeId> diverged_nodes(diverged_nodes_.begin(),
                                     diverged_nodes_.end());
  diverged_nodes_.clear();

  // Battery mode routes every replan over residual-energy link costs: paths
  // (and therefore the patched forest) bend away from drained relays. With
  // full batteries the cost is exactly 1.0 per link, which produces weights
  // bit-identical to the legacy hop-count metric — battery-aware replans
  // only diverge from legacy ones once some battery has actually drained.
  PathSystem believed_paths =
      options_.energy.battery_aware
          ? PathSystem(ledger_.BelievedTopology(), 0x5eed,
                       ResidualEnergyLinkCost(
                           PredictedResidualFractions(),
                           options_.energy.residual_cost_penalty))
          : PathSystem(ledger_.BelievedTopology());
  UpdateStats stats;
  GlobalPlan patched = ReplanForTopology(plan_, believed_paths,
                                         workload_.tasks,
                                         workload_.functions, &stats);
  // The reconciling epoch must supersede every lineage it has seen —
  // including epochs a partitioned island opened while split. Higher epoch
  // wins at every node, so opening above max(ours, theirs) converges both
  // sides onto this plan.
  const uint32_t new_epoch = std::max(epoch_, foreign_epoch_max_) + 1;
  auto new_compiled = std::make_shared<CompiledPlan>(CompiledPlan::Compile(
      patched, workload_.functions, MergePolicy::kGreedyMergePerEdge,
      new_epoch));
  std::vector<std::vector<uint8_t>> new_images =
      EncodeAllNodeStates(*new_compiled, workload_.functions);
  std::vector<NodeImageDelta> deltas = DiffNodeImages(images_, new_images);

  // The new epoch supersedes any dissemination still in flight.
  std::erase_if(in_flight_, [](const ControlMessage& m) {
    return m.kind == ControlMessage::Kind::kImage ||
           m.kind == ControlMessage::Kind::kBump;
  });
  pending_installs_.clear();

  epoch_ = new_epoch;
  plan_ = std::move(patched);
  compiled_ = std::move(new_compiled);
  images_ = std::move(new_images);
  epoch_opened_round_[new_epoch] = round;
  if (options_.energy.battery_aware) {
    // The base predicts future drain from the plan it just installed — the
    // rotation trigger and exhaustion classifier track the new load shape
    // from the next round on.
    predicted_drain_mj_ =
        CompiledRoundEnergyMj(*compiled_, options_.energy.model);
  }

  int images_queued = 0;
  int bumps_queued = 0;
  auto unreachable_now = [this](NodeId node) {
    return Contains(ledger_.believed_dead(), node) ||
           Contains(ledger_.believed_partitioned(), node);
  };
  for (const NodeImageDelta& delta : deltas) {
    if (unreachable_now(delta.node)) {
      continue;  // Nothing can be installed at a dead or cut-off node.
    }
    if (delta.node == base_) {
      // The base station installs its own image locally, for free.
      network_.InstallNodeImage(base_, images_[base_], SegmentsFor(base_));
      continue;
    }
    const bool force_image = Contains(readmitted_nodes, delta.node) ||
                             Contains(merged_nodes, delta.node) ||
                             Contains(diverged_nodes, delta.node);
    PendingInstall pending;
    pending.is_bump = !delta.ship_image && !force_image;
    pending_installs_.emplace(delta.node, pending);
    if (pending.is_bump) {
      ++bumps_queued;
    } else {
      ++images_queued;
    }
  }
  // The diff only covers nodes whose image content changed or is non-empty,
  // but a rejoiner's (or merger's, or diverged node's) actual tables are
  // unknown regardless — it may hold no delta entry yet still carry stale
  // or foreign-lineage state. Every such node gets a full framed image,
  // diff or not.
  auto force_full_image = [&](NodeId node, obs::MetricHandle counter) {
    if (node == base_ || unreachable_now(node)) return;
    auto [it, inserted] = pending_installs_.emplace(node, PendingInstall{});
    if (inserted) {
      it->second.is_bump = false;
      ++images_queued;
    } else if (it->second.is_bump) {
      it->second.is_bump = false;
      --bumps_queued;
      ++images_queued;
    }
    if (metrics_ != nullptr) {
      metrics_->AddNode(counter, node, 1);
    }
  };
  for (NodeId node : readmitted_nodes) {
    force_full_image(node, handles_.epoch_reconciliations);
  }
  for (NodeId node : merged_nodes) {
    force_full_image(node, handles_.merge_reconciliations);
  }
  for (NodeId node : diverged_nodes) {
    if (Contains(readmitted_nodes, node) || Contains(merged_nodes, node)) {
      continue;  // Already forced (and counted) above.
    }
    force_full_image(node, handles_.epoch_reconciliations);
  }

  result.replanned = true;
  result.energy_rotation = energy_rotation;
  if (metrics_ != nullptr) {
    if (energy_rotation) metrics_->Add(handles_.energy_rotations, 1);
    metrics_->Add(handles_.replans, 1);
    metrics_->Add(handles_.images_queued, images_queued);
    metrics_->Add(handles_.bumps_queued, bumps_queued);
    metrics_->Add(handles_.edges_reused, stats.edges_reused);
    metrics_->Add(handles_.edges_reoptimized, stats.edges_reoptimized);
  }
  if (trace != nullptr) {
    trace->Replan(round, epoch_,
                  static_cast<int>(ledger_.believed_failed_links().size()),
                  static_cast<int>(ledger_.believed_dead().size()),
                  images_queued, bumps_queued, stats.edges_reused,
                  stats.edges_reoptimized);
  }
}

void SelfHealingRuntime::ComputePartitionStatus(
    SelfHealingRoundResult& result) {
  const std::vector<NodeId>& dead = ledger_.believed_dead();
  const std::vector<NodeId>& parted = ledger_.believed_partitioned();
  result.believed_partitioned = parted;

  int degraded_destinations = 0;
  for (size_t i = 0; i < original_workload_.tasks.size(); ++i) {
    const Task& task = original_workload_.tasks[i];
    DestinationPartitionStatus status;
    status.destination_reachable = !Contains(dead, task.destination) &&
                                   !Contains(parted, task.destination);
    status.expected_original = static_cast<int>(task.sources.size());
    for (NodeId source : task.sources) {
      if (Contains(dead, source)) {
        status.dead_sources.push_back(source);
      } else if (Contains(parted, source)) {
        status.partitioned_sources.push_back(source);
      } else {
        ++status.believed_covered;
      }
    }
    status.original_coverage =
        status.expected_original == 0
            ? 1.0
            : static_cast<double>(status.believed_covered) /
                  status.expected_original;
    status.degraded = !status.destination_reachable ||
                      !status.dead_sources.empty() ||
                      !status.partitioned_sources.empty();
    status.degraded_by_partition =
        Contains(parted, task.destination) ||
        !status.partitioned_sources.empty();
    if (status.degraded) ++degraded_destinations;
    result.partition_status[task.destination] = std::move(status);
  }

  if (metrics_ != nullptr) {
    metrics_->Set(handles_.believed_partitioned,
                  static_cast<int64_t>(parted.size()));
    for (NodeId node : parted) {
      if (!Contains(believed_partitioned_last_, node)) {
        metrics_->AddNode(handles_.partition_events, node, 1);
      }
    }
    for (NodeId node : believed_partitioned_last_) {
      if (!Contains(parted, node)) {
        metrics_->AddNode(handles_.merge_events, node, 1);
      }
    }
    metrics_->Add(handles_.degraded_destination_rounds,
                  degraded_destinations);
  }
  believed_partitioned_last_ = parted;
}

void SelfHealingRuntime::ChargeBatteries(
    int round, const SelfHealingRoundResult& result, EventTrace* trace) {
  M2M_CHECK_EQ(static_cast<int>(result.data.node_energy_mj.size()),
               battery_.node_count())
      << "battery mode needs per-node energy tracking on the network";
  const std::vector<NodeId> depleted_before = battery_.depleted_nodes();
  // Physical ledger drains what the round actually transmitted; the
  // predicted ledger drains what the installed plan *should* cost per
  // round (CompiledRoundEnergyMj). The base station only ever reads the
  // latter — its energy decisions stay in-band.
  battery_.ChargeRound(result.data.node_energy_mj);
  predicted_.ChargeRound(predicted_drain_mj_);
  for (NodeId node : battery_.depleted_nodes()) {
    if (Contains(depleted_before, node)) continue;
    if (trace != nullptr) {
      trace->Text("round " + std::to_string(round) + ": node " +
                  std::to_string(node) + " " +
                  ToString(FaultType::kEnergyExhaustion));
    }
    if (metrics_ != nullptr) {
      metrics_->AddNode(handles_.energy_exhaustions, node, 1);
    }
  }
}

void SelfHealingRuntime::UpdateEnergyBeliefs(int round,
                                             SelfHealingRoundResult& result,
                                             EventTrace* trace) {
  result.battery_depleted = battery_.depleted_nodes();
  double min_fraction = 1.0;
  for (NodeId n = 0; n < battery_.node_count(); ++n) {
    if (battery_.immortal(n)) continue;
    min_fraction = std::min(min_fraction, battery_.residual_fraction(n));
  }
  result.min_residual_fraction = min_fraction;

  // In-band exhaustion classification: a believed-dead node whose
  // *predicted* residual is at or below the classify fraction died of its
  // battery, not a crash. Pure annotation on the ledger — the death itself
  // was detected by the ordinary suspicion machinery.
  const std::vector<double> fractions = PredictedResidualFractions();
  std::set<NodeId> candidates;
  for (NodeId n = 0; n < predicted_.node_count(); ++n) {
    if (predicted_.immortal(n)) continue;
    if (fractions[n] <= options_.energy.exhaustion_classify_fraction) {
      candidates.insert(n);
    }
  }
  ledger_.SetEnergyExhaustionCandidates(std::move(candidates));
  result.believed_energy_dead = ledger_.believed_energy_dead();

  // Proactive rotation watches the minimum predicted residual over nodes
  // the current plan actually loads (unloaded nodes cannot be rotated off
  // anything). The trigger level only ever descends — threshold first,
  // then at least `rotation_hysteresis` lower after every rotation — and
  // batteries only drain, so the trigger cannot flap; the cooldown bounds
  // rotation frequency even while the minimum keeps falling.
  double predicted_min = 1.0;
  for (NodeId n = 0; n < predicted_.node_count(); ++n) {
    if (predicted_.immortal(n)) continue;
    if (predicted_drain_mj_[n] <= 0.0) continue;
    predicted_min = std::min(predicted_min, fractions[n]);
  }
  result.predicted_min_residual_fraction = predicted_min;

  if (options_.energy.proactive_rotation &&
      predicted_min <= rotation_trigger_level_ &&
      round - last_rotation_round_ >=
          options_.energy.rotation_cooldown_rounds) {
    energy_rotation_pending_ = true;
    last_rotation_round_ = round;
    rotation_trigger_level_ = std::min(
        rotation_trigger_level_ - options_.energy.rotation_hysteresis,
        predicted_min - options_.energy.rotation_hysteresis);
    if (trace != nullptr) {
      trace->Text(
          "round " + std::to_string(round) +
          ": energy rotation trigger, predicted min residual " +
          std::to_string(std::llround(predicted_min * 1000.0)) +
          " permille");
    }
  }

  if (metrics_ != nullptr) {
    metrics_->Set(handles_.energy_rounds, battery_.rounds_charged());
    metrics_->Set(handles_.energy_drain,
                  std::llround(battery_.total_drain_mj() * 1000.0));
    metrics_->Set(handles_.energy_depleted,
                  static_cast<int64_t>(result.battery_depleted.size()));
    metrics_->Set(
        handles_.energy_dead,
        static_cast<int64_t>(result.believed_energy_dead.size()));
    metrics_->Set(handles_.energy_min_residual,
                  std::llround(min_fraction * 1000.0));
  }
}

std::vector<double> SelfHealingRuntime::PredictedResidualFractions() const {
  std::vector<double> fractions(predicted_.node_count(), 1.0);
  for (NodeId n = 0; n < predicted_.node_count(); ++n) {
    fractions[n] = predicted_.residual_fraction(n);
  }
  return fractions;
}

}  // namespace m2m
