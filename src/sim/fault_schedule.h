#ifndef M2M_SIM_FAULT_SCHEDULE_H_
#define M2M_SIM_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace m2m {

/// Kind of injected fault (paper section 3 failure handling).
enum class FaultType : uint8_t {
  /// The link is flaky for one round: each transmission attempt across it
  /// independently drops with the schedule's drop probability. Ack/retry at
  /// the runtime layer recovers from these without touching the plan.
  kTransientLink,
  /// The link is down from `round` onward (until a scheduled kLinkHeal, if
  /// any); recovery requires re-routing and a (local, Corollary 1) re-plan.
  kPersistentLink,
  /// The node is dead from `round` onward (until a scheduled kNodeRecover,
  /// if any): it neither transmits nor receives, and it stops being a
  /// source. Recovery removes it from the workload and re-plans.
  kNodeDeath,
  /// A previously failed link carries traffic again from `round` onward.
  /// Monitors readmit it through detector probation and the base station
  /// re-plans over it.
  kLinkHeal,
  /// A previously dead node rejoins from `round` onward: it boots with its
  /// last installed (now stale) plan image and must be readmitted and
  /// re-imaged before it contributes again.
  kNodeRecover,
  /// The node is dead from `round` onward because its battery drained to
  /// zero (BatteryLedger). Never produced by Generate — energy exhaustion
  /// is not sampled, it is *earned*: the executed plan's own drain
  /// deterministically kills the node. Unlike kNodeDeath there is no
  /// recovery; a battery does not refill.
  kEnergyExhaustion,
};

std::string ToString(FaultType type);

/// One scheduled fault. Transient faults affect only their round;
/// persistent faults take effect at the start of their round and last for
/// the rest of the schedule.
struct FaultEvent {
  int round = 0;
  FaultType type = FaultType::kTransientLink;
  NodeId a = kInvalidNode;  ///< Link endpoint, or the dying node.
  NodeId b = kInvalidNode;  ///< Other link endpoint; kInvalidNode for death.
};

struct FaultScheduleOptions {
  /// Rounds the schedule covers; persistent events land in [1, rounds - 1].
  int rounds = 6;
  /// Expected fraction of links that are flaky in any given round.
  double transient_link_fraction = 0.08;
  /// Per-attempt drop probability on a flaky link.
  double transient_drop_probability = 0.6;
  int persistent_link_failures = 2;
  int node_deaths = 1;
  /// How many of the accepted persistent link failures later heal
  /// (kLinkHeal), and how many of the accepted node deaths later recover
  /// (kNodeRecover). Defaults keep the legacy fail-only schedules.
  int link_heals = 0;
  int node_recoveries = 0;
  /// Rounds between a persistent fault and its scheduled recovery (>= 1; a
  /// recovery that would land past the schedule is dropped).
  int recovery_delay_rounds = 2;
  uint64_t seed = 1;
};

/// A reproducible schedule of link and node faults — and, optionally, their
/// recoveries — deterministic in (topology, protected set, options).
/// Persistent faults are generated so the surviving subgraph stays
/// connected after every event — the network always *can* recover by
/// re-planning — and nodes in `protected_nodes` (typically the
/// destinations) never die. Persistent state is interval-based: for each
/// node/link the latest scheduled event at or before the queried round
/// wins, so a death followed by a recovery leaves the node alive again.
/// Recoveries only ever add capacity, so they cannot violate the
/// connectivity invariant.
///
/// Per-attempt delivery decisions are a pure hash of (seed, round, link,
/// direction, attempt), so replaying the same schedule yields byte-identical
/// behavior without any shared mutable RNG state.
class FaultSchedule {
 public:
  static FaultSchedule Generate(const Topology& topology,
                                const std::vector<NodeId>& protected_nodes,
                                const FaultScheduleOptions& options);

  const FaultScheduleOptions& options() const { return options_; }
  /// All events, ordered by (round, type, ids).
  const std::vector<FaultEvent>& events() const { return events_; }
  /// Persistent events (link failures, deaths) taking effect at `round`.
  std::vector<FaultEvent> PersistentEventsAt(int round) const;

  /// True iff `n` is alive at `round`: the latest death/recovery event at
  /// or before `round` wins (alive if none).
  bool NodeAliveAt(int round, NodeId n) const;
  std::vector<NodeId> DeadNodesThrough(int round) const;
  /// Links persistently down at `round`, as (lo, hi) pairs (latest
  /// failure/heal event wins); excludes links implied by node deaths.
  std::vector<std::pair<NodeId, NodeId>> FailedLinksThrough(int round) const;

  /// Whether transmission attempt `attempt` (1-based) from `from` to `to`
  /// in `round` delivers. False for dead endpoints and persistently failed
  /// links; Bernoulli(1 - drop_probability) on links flaky this round;
  /// true otherwise. Rounds past options().rounds have no transient faults,
  /// so a post-schedule round is deterministic given the persistent state.
  bool AttemptDelivers(int round, NodeId from, NodeId to, int attempt) const;

  /// Human-readable event list (stable across runs; used in event traces).
  std::string Describe() const;

 private:
  FaultScheduleOptions options_;
  std::vector<FaultEvent> events_;
  /// (round, lo, hi) keys of links flaky in a specific round.
  std::unordered_set<uint64_t> transient_;
};

}  // namespace m2m

#endif  // M2M_SIM_FAULT_SCHEDULE_H_
