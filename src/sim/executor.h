#ifndef M2M_SIM_EXECUTOR_H_
#define M2M_SIM_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/aggregate_function.h"
#include "obs/metrics.h"
#include "plan/node_tables.h"
#include "sim/battery.h"
#include "sim/energy_model.h"

namespace m2m {

/// Outcome of simulating one timestep.
struct RoundResult {
  /// Plan epoch the round executed under (CompiledPlan::plan_epoch). Every
  /// destination value in this result is attributable to exactly this plan
  /// generation — the analytic mirror of the runtime's epoch gate.
  uint32_t plan_epoch = 0;
  double energy_mj = 0.0;
  /// Milestone-level messages sent (one per forest edge after greedy merge).
  int64_t messages = 0;
  /// Per-hop radio transmissions (a message on a k-hop virtual edge counts
  /// k times).
  int64_t physical_transmissions = 0;
  int64_t units = 0;
  int64_t payload_bytes = 0;
  /// Number of (node, value) override decisions taken (suppressed rounds).
  int64_t overrides = 0;
  /// Worst observed |maintained - true| over destinations (suppressed
  /// rounds; 0 for exact modes).
  double max_abs_error = 0.0;
  /// Radio energy per node (TX + RX), in millijoules.
  std::vector<double> node_energy_mj;
  /// The aggregate each destination computed this round.
  std::unordered_map<NodeId, double> destination_values;

  /// Suppression-aware per-destination coverage (suppressed rounds only).
  /// A suppressed-but-live source still counts as *covered*: its last
  /// transmitted contribution is part of the maintained aggregate, so
  /// silence under suppression is deliberate economy, not data loss — the
  /// semantic that distinguishes this accounting from the lossy runtime's
  /// delivery-based coverage (RuntimeNetwork::LossyResult).
  struct DestinationCoverage {
    int covered = 0;      ///< Sources represented in the maintained value.
    int expected = 0;     ///< Sources in the destination's task.
    int transmitted = 0;  ///< Sources that shipped a delta this round.
    int suppressed = 0;   ///< Live sources that stayed silent (covered).
    double coverage = 1.0;
  };
  std::unordered_map<NodeId, DestinationCoverage> destination_coverage;
};

/// Runtime override policies for temporal suppression (paper section 3 /
/// Figure 7): when the default plan would aggregate a changed raw value at a
/// node, the node may instead keep forwarding it raw. The policy sets how
/// much cheaper the raw option must look locally.
enum class OverridePolicy {
  kNone,          ///< Always follow the default plan.
  /// "More judicious": discounts partials that other changed sources force
  /// onto the wire anyway, and overrides only when raw is no worse.
  kConservative,
  /// Judges each value in isolation; overrides when raw costs <= 0.7x the
  /// partials it replaces.
  kMedium,
  /// Judges each value in isolation; overrides whenever raw is locally no
  /// worse (<= 1.0x).
  kAggressive,
};

std::string ToString(OverridePolicy policy);

/// Link-layer options for full rounds.
struct TransmissionOptions {
  /// Paper section 3 / footnote 1: a raw value that several of a node's
  /// outgoing (one-hop) messages carry can be transmitted once as a local
  /// broadcast with selective listening, instead of once per unicast
  /// message. Partial records are destination-specific and never shared.
  bool use_broadcast = false;
};

/// Executes a compiled many-to-many aggregation plan round by round,
/// charging radio energy and verifying that every destination computes
/// exactly its aggregation function (full rounds) or maintains it within
/// floating-point tolerance (suppressed rounds).
class PlanExecutor {
 public:
  PlanExecutor(std::shared_ptr<const CompiledPlan> compiled,
               FunctionSet functions, EnergyModel energy);

  /// Marks certain hops as free local-bus transfers (no radio energy) —
  /// used by the multi-sensor generalization, where a virtual sensor node
  /// is co-located with its host (workload/multi_sensor.h).
  using FreeLinkFn = std::function<bool(NodeId, NodeId)>;
  void set_free_link(FreeLinkFn free_link) {
    free_link_ = std::move(free_link);
  }

  /// Attaches a battery ledger: every executed round (full, broadcast,
  /// suppressed) then charges each node its radio drain. The per-round
  /// charge is accumulated in microjoules in schedule order and divided
  /// once — on a lossless full round it equals the admission layer's
  /// `PerNodeRoundEnergyMj` bit-for-bit (the predicted-vs-executed
  /// reconciliation contract). Pass nullptr to detach. The ledger must
  /// outlive the executor.
  void set_battery(BatteryLedger* battery) { battery_ = battery; }
  BatteryLedger* battery() const { return battery_; }

  PlanExecutor(const PlanExecutor&) = default;
  PlanExecutor& operator=(const PlanExecutor&) = default;

  /// Full recomputation: every source's reading is transmitted per the
  /// plan. Stateless. `readings` is indexed by node id. Destination values
  /// are verified against direct evaluation (CHECK).
  RoundResult RunRound(const std::vector<double>& readings,
                       const TransmissionOptions& options = {}) const;

  /// Primes suppression state: destinations' maintained records and the
  /// last-transmitted readings. Call once before RunSuppressedRound.
  void InitializeState(const std::vector<double>& readings);

  /// Temporal suppression: only changed readings travel, as delta records;
  /// destinations apply the merged deltas to their maintained aggregates.
  /// Requires every function to support linear deltas. Verifies maintained
  /// aggregates against direct evaluation.
  /// `replicated_preagg` enables paper section 3's "more flexible
  /// alternative": every node on a value's multicast path holds its
  /// pre-aggregation functions, so an overridden raw value can still be
  /// folded downstream at the next aggregation point instead of traveling
  /// raw to every destination. Costs extra state
  /// (CountReplicatedPreAggEntries) but caps the override downside.
  RoundResult RunSuppressedRound(const std::vector<double>& new_readings,
                                 const std::vector<bool>& changed,
                                 OverridePolicy policy,
                                 bool replicated_preagg = false);

  /// Threshold-based suppression (paper section 3: continuous maintenance
  /// "up to desired precision"): a source transmits only when its reading
  /// has drifted more than `epsilon` from its last *transmitted* value.
  /// Maintained aggregates are approximate; the executor verifies each stays
  /// within its function's SuppressionErrorBound(epsilon) and reports the
  /// worst observed deviation in RoundResult::max_abs_error.
  RoundResult RunThresholdSuppressedRound(
      const std::vector<double>& new_readings, double epsilon,
      OverridePolicy policy, bool replicated_preagg = false);

  /// Attaches a metrics registry: suppressed rounds then record changed vs
  /// suppressed source counts, override decisions, and transmitted payload
  /// bytes (the paper section 3 suppression quantities). Pass nullptr to
  /// detach. The registry must outlive the executor.
  void set_metrics(obs::MetricsRegistry* metrics);
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Maintained aggregate per destination (valid after InitializeState).
  const std::unordered_map<NodeId, double>& current_aggregates() const {
    return current_aggregates_;
  }

  const CompiledPlan& compiled() const { return *compiled_; }
  const EnergyModel& energy_model() const { return energy_; }

  /// Extra pre-aggregation table entries needed to replicate w_{d,s} at
  /// every node downstream of each value's default fold point (the state
  /// price of `replicated_preagg`).
  int64_t CountReplicatedPreAggEntries() const;

 private:
  /// Packs two 32-bit ids into one map key.
  static uint64_t Key(int64_t a, int64_t b) {
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b);
  }

  int PartialUnitBytes(NodeId destination) const;
  /// `battery_uj`, when non-null, additionally accumulates the message's
  /// per-node drain in microjoules (divided once per round before charging
  /// the ledger — matching PerNodeRoundEnergyMj's operation order exactly).
  void ChargeMessage(int edge_index, int payload_bytes, RoundResult& result,
                     std::vector<double>* battery_uj = nullptr) const;
  /// Reconstructs, verifies, and evaluates one task's aggregate for a full
  /// round. Touches only the task's own (edge, destination) lattice — the
  /// execution-level face of Theorem 1's per-edge independence — so
  /// RunRound fans tasks out across shards (see RunRound).
  double EvaluateTaskRound(const Task& task,
                           const std::vector<double>& readings) const;
  RoundResult RunSuppressedRoundImpl(const std::vector<double>& new_readings,
                                     const std::vector<bool>& changed,
                                     OverridePolicy policy, double epsilon,
                                     bool replicated_preagg);

  /// Pre-resolved metric handles, registered once in set_metrics.
  struct MetricHandles {
    obs::MetricHandle rounds;
    obs::MetricHandle changed_sources;
    obs::MetricHandle suppressed_sources;
    obs::MetricHandle overrides;
    obs::MetricHandle payload_bytes;
    obs::MetricHandle messages;
  };

  std::shared_ptr<const CompiledPlan> compiled_;
  FunctionSet functions_;
  EnergyModel energy_;
  FreeLinkFn free_link_;
  BatteryLedger* battery_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;

  /// Key(node, destination) -> forest edge index on which that node emits
  /// the destination's partial record (if any).
  std::unordered_map<uint64_t, int> fold_edge_;
  /// destination -> forest edges carrying its partial record, ascending.
  /// Lets per-task round evaluation verify exactly the (edge, destination)
  /// partial units the serial edge sweep verified.
  std::unordered_map<NodeId, std::vector<int>> agg_edges_by_dest_;

  // --- Suppression state ---
  bool state_initialized_ = false;
  std::vector<double> last_readings_;
  std::unordered_map<NodeId, PartialRecord> destination_records_;
  std::unordered_map<NodeId, double> current_aggregates_;
};

}  // namespace m2m

#endif  // M2M_SIM_EXECUTOR_H_
