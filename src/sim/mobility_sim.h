#ifndef M2M_SIM_MOBILITY_SIM_H_
#define M2M_SIM_MOBILITY_SIM_H_

#include "obs/metrics.h"
#include "runtime/network.h"
#include "sim/fault_schedule.h"
#include "topology/mobility.h"

namespace m2m {

/// Masks a physical link model with a mobility trace: an attempt on a
/// deployment link delivers iff the link is geometrically up at `round`
/// AND the base model delivers it. Everything else (aliveness, channel
/// effects) passes through — mobility moves radios, it does not corrupt
/// frames or kill nodes. With a static (or zero-speed) trace the returned
/// model produces byte-identical outcomes to `base`, which is the
/// RNG-stream-separation guarantee the mobility regression pins.
LossyLinkModel WithMobility(const LossyLinkModel& base,
                            const MobilityTrace& trace, int round);

/// The combined physical oracle for one round of a mobility × fault run:
/// FaultSchedule decides deaths and scheduled link faults, the trace masks
/// links broken by movement. This is what chaos-style differentials feed
/// to SelfHealingRuntime::RunRound.
LossyLinkModel MobilityFaultModel(const FaultSchedule& schedule,
                                  const MobilityTrace& trace, int round);

/// Pre-resolved handles for the mobility.* metric family.
struct MobilityMetricHandles {
  obs::MetricHandle link_breaks;  ///< mobility.link_breaks (counter).
  obs::MetricHandle link_makes;   ///< mobility.link_makes (counter).
  obs::MetricHandle links_down;   ///< mobility.links_down (gauge).
};

MobilityMetricHandles RegisterMobilityMetrics(obs::MetricsRegistry& metrics);

/// Records one round of mobility churn: counts the round's make/break
/// events (per-edge attributed) and sets the links-down gauge.
void RecordMobilityRound(const MobilityTrace& trace, int round,
                         obs::MetricsRegistry& metrics,
                         const MobilityMetricHandles& handles);

}  // namespace m2m

#endif  // M2M_SIM_MOBILITY_SIM_H_
