#ifndef M2M_SIM_BATTERY_H_
#define M2M_SIM_BATTERY_H_

#include <vector>

#include "common/ids.h"
#include "plan/node_tables.h"
#include "sim/energy_model.h"

namespace m2m {

/// Initial charge configuration for a deployment's batteries.
struct BatteryOptions {
  /// Initial charge per node, in millijoules. 20 J is the radio share of a
  /// pair of AA cells under the Mica2 duty-cycle assumption bench/lifetime
  /// has always used.
  double initial_charge_mj = 20000.0;
  /// Per-node overrides, indexed by node id; used when non-empty (must then
  /// cover every node). Lets tests and benches start individual relays near
  /// exhaustion.
  std::vector<double> initial_charge_mj_per_node;
  /// Flat non-radio drain charged to every non-depleted mortal node each
  /// round (MCU + sensing floor). 0 keeps the ledger radio-only.
  double idle_mj_per_round = 0.0;
  /// Wall-powered nodes (base stations, sinks): never drain, never deplete.
  std::vector<NodeId> immortal_nodes;
};

/// Per-node battery state, drained by executed rounds and read by the fault
/// layer: a node whose drain reaches its initial charge is *depleted* and
/// dies exactly like a crashed node — except deterministically, from the
/// energy the executed plan actually spent. The ledger is the physical
/// ground truth; the base station never reads it directly (it predicts
/// residuals in-band from its own installed plans, see SelfHealingRuntime).
///
/// Drain is tracked as a separate accumulator rather than subtracting from
/// the residual in place: after one charged round, `drained_mj(n)` equals
/// the charged value bit-for-bit (0 + x == x), which is what lets the
/// predicted-vs-executed reconciliation test demand exact equality.
class BatteryLedger {
 public:
  BatteryLedger() = default;
  BatteryLedger(int node_count, const BatteryOptions& options = {});

  int node_count() const { return static_cast<int>(initial_mj_.size()); }

  /// Charges one executed round: node n drains `node_mj[n]` plus the idle
  /// floor (idle applies to nodes not yet depleted when the round started).
  /// Immortal nodes drain nothing. `node_mj` must have node_count entries.
  void ChargeRound(const std::vector<double>& node_mj);

  double initial_mj(NodeId node) const { return initial_mj_[node]; }
  double drained_mj(NodeId node) const { return drained_mj_[node]; }
  /// Remaining charge, clamped at zero.
  double residual_mj(NodeId node) const;
  /// residual / initial in [0, 1]; immortal nodes always report 1.
  double residual_fraction(NodeId node) const;
  /// True iff the node's battery is exhausted (mortal and drain >= charge).
  bool depleted(NodeId node) const;
  bool immortal(NodeId node) const { return immortal_[node]; }
  /// All depleted nodes, ascending.
  std::vector<NodeId> depleted_nodes() const;
  int rounds_charged() const { return rounds_charged_; }
  double total_drain_mj() const;

 private:
  std::vector<double> initial_mj_;
  std::vector<double> drained_mj_;
  std::vector<bool> immortal_;
  double idle_mj_per_round_ = 0.0;
  int rounds_charged_ = 0;
};

/// Per-node radio energy of one full analytic round of `compiled`, in
/// millijoules. Accumulates microjoules over the schedule's messages in
/// schedule order (TX then RX per physical hop) and divides once at the
/// end — the exact operation sequence of the admission layer's
/// `PerNodeRoundEnergyMj`, so the two agree bit-for-bit (regression-tested:
/// floating-point addition order is part of the byte-identity contract).
/// This is both what PlanExecutor charges the ledger on a lossless round
/// and what the base station uses to predict residuals in-band.
std::vector<double> CompiledRoundEnergyMj(const CompiledPlan& compiled,
                                          const EnergyModel& energy);

}  // namespace m2m

#endif  // M2M_SIM_BATTERY_H_
