#ifndef M2M_SIM_ENERGY_MODEL_H_
#define M2M_SIM_ENERGY_MODEL_H_

namespace m2m {

/// Radio energy model for a Mica2-class mote (CC1000, 38.4 kbps, 3 V):
/// TX ~27 mA and RX ~10 mA give roughly 16.9 uJ and 6.25 uJ per byte. Every
/// message pays a fixed-size header on top of its payload (paper section 4:
/// "Each transmitted message includes a header of fixed size, followed by
/// the body"; energy is charged for both sending and receiving).
struct EnergyModel {
  double tx_uj_per_byte = 16.9;
  double rx_uj_per_byte = 6.25;
  int header_bytes = 8;
  /// Idle listening: the RX current drawn while the radio waits for
  /// packets (6.25 uJ/B at 4.8 B/ms). Duty-cycled schedules (TDMA) save
  /// exactly this.
  double idle_listen_uj_per_ms = 30.0;

  /// Energy to transmit a message with the given payload, in microjoules.
  double TxUj(int payload_bytes) const {
    return tx_uj_per_byte * (header_bytes + payload_bytes);
  }
  /// Energy for one node to receive that message.
  double RxUj(int payload_bytes) const {
    return rx_uj_per_byte * (header_bytes + payload_bytes);
  }
  /// One unicast hop: sender TX + recipient RX.
  double UnicastHopUj(int payload_bytes) const {
    return TxUj(payload_bytes) + RxUj(payload_bytes);
  }
  /// One broadcast: sender TX + RX at each of `listener_count` neighbors.
  double BroadcastUj(int payload_bytes, int listener_count) const {
    return TxUj(payload_bytes) + listener_count * RxUj(payload_bytes);
  }
};

}  // namespace m2m

#endif  // M2M_SIM_ENERGY_MODEL_H_
