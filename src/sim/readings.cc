#include "sim/readings.h"

#include "common/check.h"

namespace m2m {

ReadingGenerator::ReadingGenerator(int node_count, uint64_t seed,
                                   double step_stddev)
    : rng_(seed), step_stddev_(step_stddev) {
  M2M_CHECK_GT(node_count, 0);
  values_.reserve(node_count);
  for (int i = 0; i < node_count; ++i) {
    values_.push_back(rng_.UniformDouble(10.0, 30.0));
  }
}

std::vector<bool> ReadingGenerator::Advance(double change_probability) {
  std::vector<bool> changed(values_.size(), false);
  for (size_t i = 0; i < values_.size(); ++i) {
    if (rng_.Bernoulli(change_probability)) {
      values_[i] += rng_.Gaussian() * step_stddev_;
      changed[i] = true;
    }
  }
  return changed;
}

}  // namespace m2m
