#ifndef M2M_SIM_FAILURE_H_
#define M2M_SIM_FAILURE_H_

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "plan/node_tables.h"
#include "routing/milestones.h"
#include "sim/energy_model.h"
#include "topology/topology.h"

namespace m2m {

/// The set of links that are up in one round. Keys are packed (lo, hi) node
/// pairs.
class LinkOutcome {
 public:
  /// Samples each link independently up with its stability probability.
  static LinkOutcome Sample(const Topology& topology,
                            const LinkStabilityModel& model, Rng& rng);
  /// All links up.
  static LinkOutcome AllUp(const Topology& topology);

  bool IsUp(NodeId a, NodeId b) const;
  /// Forces one link down (test helper).
  void TakeDown(NodeId a, NodeId b);
  /// Takes down every link incident to `node` in `topology` — the link-set
  /// view of a node death, consistent with Topology::WithFailures' masking
  /// (a dead node stays present but isolated).
  void TakeDownNode(const Topology& topology, NodeId node);

  /// The up links as sorted undirected (lo, hi) pairs — comparable against
  /// a failure-masked Topology's link set.
  std::vector<std::pair<NodeId, NodeId>> AliveLinks() const;

 private:
  std::unordered_set<uint64_t> up_;
};

/// Outcome of one round executed under transient link failures (paper
/// section 3: milestones let the communication layer route around failed
/// links between consecutive milestones; a fully pinned plan cannot).
struct FailureRoundResult {
  double energy_mj = 0.0;
  int64_t messages_attempted = 0;
  int64_t messages_delivered = 0;
  /// Destinations whose aggregate arrived complete this round.
  int destinations_complete = 0;
  int destinations_total = 0;
  /// (source, destination) routes whose every edge delivered — the fraction
  /// of contributions that reached their aggregate this round.
  int64_t contributions_delivered = 0;
  int64_t contributions_total = 0;
};

/// Redundant state installed for failure handling (paper section 3 /
/// technical report: "alleviate the impact of failures by introducing some
/// redundant state into the network").
struct RedundancyOptions {
  /// Each one-hop plan edge (i, j) additionally stores a backup relay k (a
  /// common radio neighbor of i and j). When the direct link is down, the
  /// message detours i -> k -> j at two-hop cost, if both backup links are
  /// up. One extra table entry per edge.
  bool backup_relay = false;
};

/// Simulates one round of `compiled` under the given link outcome. For each
/// forest (virtual) edge, the communication layer may use any path of live
/// links between the edge's endpoints — this is exactly the flexibility
/// milestones buy; with an all-nodes milestone plan every segment is one
/// physical hop and a dead link means the message fails this round (unless
/// a configured backup relay saves it). Delivered messages are charged for
/// the live path actually taken; failed messages charge one transmit
/// attempt at the break point. A destination counts as complete iff every
/// edge on every of its routes delivered.
FailureRoundResult RunRoundWithFailures(const CompiledPlan& compiled,
                                        const FunctionSet& functions,
                                        const Topology& topology,
                                        const LinkOutcome& links,
                                        const EnergyModel& energy,
                                        const RedundancyOptions& redundancy =
                                            {});

}  // namespace m2m

#endif  // M2M_SIM_FAILURE_H_
