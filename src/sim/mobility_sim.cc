#include "sim/mobility_sim.h"

#include "common/check.h"

namespace m2m {

LossyLinkModel WithMobility(const LossyLinkModel& base,
                            const MobilityTrace& trace, int round) {
  M2M_CHECK(base.attempt_delivers != nullptr);
  LossyLinkModel masked = base;
  // Capture the base delegate by value: the returned model must not dangle
  // if `base` goes out of scope before the round runs.
  auto base_delivers = base.attempt_delivers;
  masked.attempt_delivers = [&trace, round, base_delivers](
                                NodeId from, NodeId to, int attempt) {
    return trace.LinkUpAt(round, from, to) &&
           base_delivers(from, to, attempt);
  };
  return masked;
}

LossyLinkModel MobilityFaultModel(const FaultSchedule& schedule,
                                  const MobilityTrace& trace, int round) {
  LossyLinkModel base;
  base.attempt_delivers = [&schedule, round](NodeId from, NodeId to,
                                             int attempt) {
    return schedule.AttemptDelivers(round, from, to, attempt);
  };
  base.node_alive = [&schedule, round](NodeId n) {
    return schedule.NodeAliveAt(round, n);
  };
  return WithMobility(base, trace, round);
}

MobilityMetricHandles RegisterMobilityMetrics(obs::MetricsRegistry& metrics) {
  MobilityMetricHandles handles;
  handles.link_breaks = metrics.Counter("mobility.link_breaks");
  handles.link_makes = metrics.Counter("mobility.link_makes");
  handles.links_down = metrics.Gauge("mobility.links_down");
  return handles;
}

void RecordMobilityRound(const MobilityTrace& trace, int round,
                         obs::MetricsRegistry& metrics,
                         const MobilityMetricHandles& handles) {
  for (const LinkEvent& event : trace.EventsAt(round)) {
    if (event.up) {
      metrics.AddEdge(handles.link_makes, event.a, event.b);
    } else {
      metrics.AddEdge(handles.link_breaks, event.a, event.b);
    }
  }
  metrics.Set(handles.links_down, trace.down_link_count(round));
}

}  // namespace m2m
