#include "sim/flood.h"

#include <vector>

#include "agg/partial_record.h"
#include "common/check.h"

namespace m2m {

FloodResult SimulateFloodRound(const Topology& topology,
                               const std::vector<NodeId>& sources,
                               const EnergyModel& energy) {
  const int n = topology.node_count();
  FloodResult result;
  result.node_energy_mj.assign(n, 0.0);

  // seen[node][value index]: whether the node already holds that value.
  std::vector<std::vector<bool>> seen(
      n, std::vector<bool>(sources.size(), false));
  // Values to broadcast in the current wave.
  std::vector<std::vector<int>> pending(n);
  for (size_t v = 0; v < sources.size(); ++v) {
    NodeId s = sources[v];
    M2M_CHECK(s >= 0 && s < n);
    M2M_CHECK(!seen[s][v]) << "duplicate source " << s;
    seen[s][v] = true;
    pending[s].push_back(static_cast<int>(v));
  }

  int guard = 0;
  while (true) {
    M2M_CHECK_LE(++guard, n + 1) << "flood failed to quiesce";
    std::vector<std::vector<int>> next(n);
    bool any = false;
    for (NodeId u = 0; u < n; ++u) {
      if (pending[u].empty()) continue;
      any = true;
      int payload =
          static_cast<int>(pending[u].size()) * kRawUnitBytes;
      const auto& neighbors = topology.neighbors(u);
      result.messages += 1;
      result.payload_bytes += payload;
      double tx_mj = energy.TxUj(payload) / 1000.0;
      double rx_mj = energy.RxUj(payload) / 1000.0;
      result.node_energy_mj[u] += tx_mj;
      result.energy_mj += tx_mj;
      for (NodeId w : neighbors) {
        result.node_energy_mj[w] += rx_mj;
        result.energy_mj += rx_mj;
        for (int v : pending[u]) {
          if (!seen[w][v]) {
            seen[w][v] = true;
            next[w].push_back(v);
          }
        }
      }
    }
    if (!any) break;
    pending = std::move(next);
  }

  // Full dissemination sanity check (the network is connected).
  for (NodeId u = 0; u < n; ++u) {
    for (size_t v = 0; v < sources.size(); ++v) {
      M2M_CHECK(seen[u][v]) << "value " << v << " never reached node " << u;
    }
  }
  return result;
}

}  // namespace m2m
