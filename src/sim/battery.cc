#include "sim/battery.h"

#include <algorithm>

#include "common/check.h"

namespace m2m {

BatteryLedger::BatteryLedger(int node_count, const BatteryOptions& options)
    : initial_mj_(node_count, options.initial_charge_mj),
      drained_mj_(node_count, 0.0),
      immortal_(node_count, false),
      idle_mj_per_round_(options.idle_mj_per_round) {
  M2M_CHECK_GE(node_count, 0);
  if (!options.initial_charge_mj_per_node.empty()) {
    M2M_CHECK_EQ(
        static_cast<int>(options.initial_charge_mj_per_node.size()),
        node_count)
        << "per-node charges must cover every node";
    initial_mj_ = options.initial_charge_mj_per_node;
  }
  for (double charge : initial_mj_) M2M_CHECK_GE(charge, 0.0);
  M2M_CHECK_GE(idle_mj_per_round_, 0.0);
  for (NodeId node : options.immortal_nodes) {
    M2M_CHECK(node >= 0 && node < node_count);
    immortal_[node] = true;
  }
}

void BatteryLedger::ChargeRound(const std::vector<double>& node_mj) {
  M2M_CHECK_EQ(static_cast<int>(node_mj.size()), node_count());
  for (NodeId node = 0; node < node_count(); ++node) {
    if (immortal_[node]) continue;
    const bool was_depleted = depleted(node);
    drained_mj_[node] += node_mj[node];
    if (!was_depleted) drained_mj_[node] += idle_mj_per_round_;
  }
  ++rounds_charged_;
}

double BatteryLedger::residual_mj(NodeId node) const {
  return std::max(0.0, initial_mj_[node] - drained_mj_[node]);
}

double BatteryLedger::residual_fraction(NodeId node) const {
  if (immortal_[node]) return 1.0;
  if (initial_mj_[node] <= 0.0) return 0.0;
  return residual_mj(node) / initial_mj_[node];
}

bool BatteryLedger::depleted(NodeId node) const {
  return !immortal_[node] && drained_mj_[node] >= initial_mj_[node];
}

std::vector<NodeId> BatteryLedger::depleted_nodes() const {
  std::vector<NodeId> nodes;
  for (NodeId node = 0; node < node_count(); ++node) {
    if (depleted(node)) nodes.push_back(node);
  }
  return nodes;
}

double BatteryLedger::total_drain_mj() const {
  double total = 0.0;
  for (double drained : drained_mj_) total += drained;
  return total;
}

std::vector<double> CompiledRoundEnergyMj(const CompiledPlan& compiled,
                                          const EnergyModel& energy) {
  // Mirrors lifecycle's PerNodeRoundEnergyMj operation for operation:
  // microjoules accumulated over messages in schedule order, TX before RX
  // per hop, one division at the end. Any deviation breaks the exact
  // predicted-vs-executed reconciliation (energy_test pins it).
  std::vector<double> node_uj(compiled.node_count(), 0.0);
  const MessageSchedule& schedule = compiled.schedule();
  for (const MessageSchedule::Message& message : schedule.messages()) {
    int payload_bytes = 0;
    for (int u : message.unit_ids) {
      payload_bytes += schedule.units()[u].unit_bytes;
    }
    const ForestEdge& edge =
        compiled.plan().forest().edges()[message.edge_index];
    for (size_t hop = 0; hop + 1 < edge.segment.size(); ++hop) {
      node_uj[edge.segment[hop]] += energy.TxUj(payload_bytes);
      node_uj[edge.segment[hop + 1]] += energy.RxUj(payload_bytes);
    }
  }
  for (double& uj : node_uj) uj /= 1000.0;
  return node_uj;
}

}  // namespace m2m
