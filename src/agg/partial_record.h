#ifndef M2M_AGG_PARTIAL_RECORD_H_
#define M2M_AGG_PARTIAL_RECORD_H_

#include <array>

namespace m2m {

/// Wire-size constants (bytes) for message units. Readings are transmitted
/// as 4-byte floats tagged with a 2-byte node identifier, matching the
/// paper's Mica2 setting where both raw values and weighted-sum partial
/// records are single floating-point numbers.
inline constexpr int kIdTagBytes = 2;
inline constexpr int kReadingBytes = 4;
inline constexpr int kCountFieldBytes = 2;

/// Wire size of one raw message unit (source tag + reading).
inline constexpr int kRawUnitBytes = kIdTagBytes + kReadingBytes;

/// A constant-size partial aggregate record. Functions use up to three
/// numeric fields (e.g. weighted sum / sum+count / sum+sumsq+count); the
/// owning AggregateFunction knows how many fields are meaningful and what
/// they cost on the wire.
struct PartialRecord {
  std::array<double, 3> fields = {0.0, 0.0, 0.0};

  friend bool operator==(const PartialRecord&,
                         const PartialRecord&) = default;
};

/// Field-wise sum; valid for sum-like records (all our delta-capable
/// functions keep every field additive).
PartialRecord AddFields(const PartialRecord& a, const PartialRecord& b);

/// Field-wise difference a - b.
PartialRecord SubtractFields(const PartialRecord& a, const PartialRecord& b);

}  // namespace m2m

#endif  // M2M_AGG_PARTIAL_RECORD_H_
