#include "agg/aggregate_function.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace m2m {

PartialRecord AddFields(const PartialRecord& a, const PartialRecord& b) {
  PartialRecord out;
  for (size_t i = 0; i < out.fields.size(); ++i) {
    out.fields[i] = a.fields[i] + b.fields[i];
  }
  return out;
}

PartialRecord SubtractFields(const PartialRecord& a, const PartialRecord& b) {
  PartialRecord out;
  for (size_t i = 0; i < out.fields.size(); ++i) {
    out.fields[i] = a.fields[i] - b.fields[i];
  }
  return out;
}

PartialRecord AggregateFunction::DeltaPreAggregate(NodeId source,
                                                   double old_value,
                                                   double new_value) const {
  M2M_CHECK(SupportsDeltas()) << name() << " has no delta form";
  return SubtractFields(PreAggregate(source, new_value),
                        PreAggregate(source, old_value));
}

PartialRecord AggregateFunction::LinearDeltaPreAggregate(NodeId source,
                                                         double delta) const {
  M2M_CHECK(SupportsLinearDeltas()) << name() << " has no linear delta form";
  (void)source;
  (void)delta;
  return PartialRecord{};
}

PartialRecord AggregateFunction::ApplyDelta(const PartialRecord& record,
                                            const PartialRecord& delta) const {
  M2M_CHECK(SupportsDeltas()) << name() << " has no delta form";
  return AddFields(record, delta);
}

double AggregateFunction::SuppressionErrorBound(double epsilon) const {
  M2M_CHECK(SupportsLinearDeltas())
      << name() << " has no suppression error bound";
  (void)epsilon;
  return 0.0;
}

std::string ToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kWeightedSum:
      return "weighted_sum";
    case AggregateKind::kWeightedAverage:
      return "weighted_average";
    case AggregateKind::kWeightedStdDev:
      return "weighted_stddev";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kCountAbove:
      return "count_above";
    case AggregateKind::kArgMax:
      return "argmax";
  }
  return "unknown";
}

namespace {

// Shared base handling the per-source weight table.
class WeightedFunctionBase : public AggregateFunction {
 public:
  explicit WeightedFunctionBase(
      const std::vector<std::pair<NodeId, double>>& weights) {
    M2M_CHECK(!weights.empty());
    for (const auto& [source, weight] : weights) {
      M2M_CHECK(weights_.emplace(source, weight).second)
          << "duplicate weight for source " << source;
    }
  }

  std::vector<NodeId> sources() const override {
    std::vector<NodeId> out;
    out.reserve(weights_.size());
    for (const auto& [source, weight] : weights_) out.push_back(source);
    return out;  // std::map keys are already ascending.
  }

  double WeightFor(NodeId source) const override { return WeightOf(source); }

 protected:
  double WeightOf(NodeId source) const {
    auto it = weights_.find(source);
    M2M_CHECK(it != weights_.end())
        << "node " << source << " is not a source of " << name();
    return it->second;
  }

  // Ordered so sources() is deterministic.
  std::map<NodeId, double> weights_;
};

class WeightedSum : public WeightedFunctionBase {
 public:
  using WeightedFunctionBase::WeightedFunctionBase;

  PartialRecord PreAggregate(NodeId source, double value) const override {
    return PartialRecord{{WeightOf(source) * value, 0.0, 0.0}};
  }

  PartialRecord Merge(const PartialRecord& a,
                      const PartialRecord& b) const override {
    return AddFields(a, b);
  }

  double Evaluate(const PartialRecord& record) const override {
    return record.fields[0];
  }

  double Direct(
      const std::unordered_map<NodeId, double>& values) const override {
    double total = 0.0;
    for (const auto& [source, weight] : weights_) {
      total += weight * values.at(source);
    }
    return total;
  }

  int partial_record_bytes() const override { return kReadingBytes; }
  std::string name() const override { return "weighted_sum"; }
  AggregateKind kind() const override { return AggregateKind::kWeightedSum; }

  bool SupportsLinearDeltas() const override { return true; }
  PartialRecord LinearDeltaPreAggregate(NodeId source,
                                        double delta) const override {
    return PartialRecord{{WeightOf(source) * delta, 0.0, 0.0}};
  }

  double SuppressionErrorBound(double epsilon) const override {
    double total = 0.0;
    for (const auto& [source, weight] : weights_) {
      total += std::abs(weight);
    }
    return epsilon * total;
  }
};

class WeightedAverage : public WeightedFunctionBase {
 public:
  using WeightedFunctionBase::WeightedFunctionBase;

  PartialRecord PreAggregate(NodeId source, double value) const override {
    return PartialRecord{{WeightOf(source) * value, 1.0, 0.0}};
  }

  PartialRecord Merge(const PartialRecord& a,
                      const PartialRecord& b) const override {
    return AddFields(a, b);
  }

  double Evaluate(const PartialRecord& record) const override {
    M2M_CHECK_GT(record.fields[1], 0.0);
    return record.fields[0] / record.fields[1];
  }

  double Direct(
      const std::unordered_map<NodeId, double>& values) const override {
    double total = 0.0;
    for (const auto& [source, weight] : weights_) {
      total += weight * values.at(source);
    }
    return total / static_cast<double>(weights_.size());
  }

  int partial_record_bytes() const override {
    return kReadingBytes + kCountFieldBytes;
  }
  std::string name() const override { return "weighted_average"; }
  AggregateKind kind() const override {
    return AggregateKind::kWeightedAverage;
  }

  bool SupportsLinearDeltas() const override { return true; }
  PartialRecord LinearDeltaPreAggregate(NodeId source,
                                        double delta) const override {
    // The count does not change when a reading changes.
    return PartialRecord{{WeightOf(source) * delta, 0.0, 0.0}};
  }

  double SuppressionErrorBound(double epsilon) const override {
    double total = 0.0;
    for (const auto& [source, weight] : weights_) {
      total += std::abs(weight);
    }
    return epsilon * total / static_cast<double>(weights_.size());
  }
};

class WeightedStdDev : public WeightedFunctionBase {
 public:
  using WeightedFunctionBase::WeightedFunctionBase;

  PartialRecord PreAggregate(NodeId source, double value) const override {
    double x = WeightOf(source) * value;
    return PartialRecord{{x, x * x, 1.0}};
  }

  PartialRecord Merge(const PartialRecord& a,
                      const PartialRecord& b) const override {
    return AddFields(a, b);
  }

  double Evaluate(const PartialRecord& record) const override {
    M2M_CHECK_GT(record.fields[2], 0.0);
    double n = record.fields[2];
    double mean = record.fields[0] / n;
    double var = record.fields[1] / n - mean * mean;
    return std::sqrt(std::max(var, 0.0));
  }

  double Direct(
      const std::unordered_map<NodeId, double>& values) const override {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const auto& [source, weight] : weights_) {
      double x = weight * values.at(source);
      sum += x;
      sum_sq += x * x;
    }
    double n = static_cast<double>(weights_.size());
    double mean = sum / n;
    return std::sqrt(std::max(sum_sq / n - mean * mean, 0.0));
  }

  int partial_record_bytes() const override {
    return 2 * kReadingBytes + kCountFieldBytes;
  }
  std::string name() const override { return "weighted_stddev"; }
  AggregateKind kind() const override {
    return AggregateKind::kWeightedStdDev;
  }
};

// Min/Max share everything but the comparator.
class Extremum : public WeightedFunctionBase {
 public:
  Extremum(const std::vector<std::pair<NodeId, double>>& weights,
           bool is_min)
      : WeightedFunctionBase(weights), is_min_(is_min) {}

  PartialRecord PreAggregate(NodeId source, double value) const override {
    WeightOf(source);  // Validates membership; weights are unused.
    return PartialRecord{{value, 0.0, 0.0}};
  }

  PartialRecord Merge(const PartialRecord& a,
                      const PartialRecord& b) const override {
    double merged = is_min_ ? std::min(a.fields[0], b.fields[0])
                            : std::max(a.fields[0], b.fields[0]);
    return PartialRecord{{merged, 0.0, 0.0}};
  }

  double Evaluate(const PartialRecord& record) const override {
    return record.fields[0];
  }

  double Direct(
      const std::unordered_map<NodeId, double>& values) const override {
    double best = is_min_ ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
    for (const auto& [source, weight] : weights_) {
      best = is_min_ ? std::min(best, values.at(source))
                     : std::max(best, values.at(source));
    }
    return best;
  }

  bool SupportsDeltas() const override { return false; }
  int partial_record_bytes() const override { return kReadingBytes; }
  std::string name() const override { return is_min_ ? "min" : "max"; }
  AggregateKind kind() const override {
    return is_min_ ? AggregateKind::kMin : AggregateKind::kMax;
  }

  double WeightFor(NodeId source) const override {
    WeightOf(source);  // Validates membership; extrema are unweighted.
    return 1.0;
  }

 private:
  bool is_min_;
};

// Number of reporting sources: the simplest algebraic aggregate. A tiny
// (count-only) partial record.
class Count : public WeightedFunctionBase {
 public:
  using WeightedFunctionBase::WeightedFunctionBase;

  PartialRecord PreAggregate(NodeId source, double value) const override {
    WeightOf(source);  // Validates membership.
    (void)value;
    return PartialRecord{{1.0, 0.0, 0.0}};
  }

  PartialRecord Merge(const PartialRecord& a,
                      const PartialRecord& b) const override {
    return AddFields(a, b);
  }

  double Evaluate(const PartialRecord& record) const override {
    return record.fields[0];
  }

  double Direct(
      const std::unordered_map<NodeId, double>& values) const override {
    for (const auto& [source, weight] : weights_) values.at(source);
    return static_cast<double>(weights_.size());
  }

  int partial_record_bytes() const override { return kCountFieldBytes; }
  std::string name() const override { return "count"; }
  AggregateKind kind() const override { return AggregateKind::kCount; }
  double WeightFor(NodeId source) const override {
    WeightOf(source);
    return 1.0;
  }
};

// Event detection: how many sources read above the threshold. Delta-capable
// (indicator differences are sum-like) but not linear in the raw delta.
class CountAbove : public WeightedFunctionBase {
 public:
  CountAbove(const std::vector<std::pair<NodeId, double>>& weights,
             double threshold)
      : WeightedFunctionBase(weights), threshold_(threshold) {}

  PartialRecord PreAggregate(NodeId source, double value) const override {
    WeightOf(source);
    return PartialRecord{{value > threshold_ ? 1.0 : 0.0, 0.0, 0.0}};
  }

  PartialRecord Merge(const PartialRecord& a,
                      const PartialRecord& b) const override {
    return AddFields(a, b);
  }

  double Evaluate(const PartialRecord& record) const override {
    return record.fields[0];
  }

  double Direct(
      const std::unordered_map<NodeId, double>& values) const override {
    double count = 0.0;
    for (const auto& [source, weight] : weights_) {
      count += values.at(source) > threshold_ ? 1.0 : 0.0;
    }
    return count;
  }

  int partial_record_bytes() const override { return kCountFieldBytes; }
  std::string name() const override { return "count_above"; }
  AggregateKind kind() const override { return AggregateKind::kCountAbove; }
  double Parameter() const override { return threshold_; }
  double WeightFor(NodeId source) const override {
    WeightOf(source);
    return 1.0;
  }

 private:
  double threshold_;
};

// Which source reads highest. The partial record carries (value, node id);
// merge keeps the larger value, breaking ties toward the smaller id so the
// result is deterministic regardless of merge order.
class ArgMax : public WeightedFunctionBase {
 public:
  using WeightedFunctionBase::WeightedFunctionBase;

  PartialRecord PreAggregate(NodeId source, double value) const override {
    WeightOf(source);
    return PartialRecord{{value, static_cast<double>(source), 0.0}};
  }

  PartialRecord Merge(const PartialRecord& a,
                      const PartialRecord& b) const override {
    if (a.fields[0] != b.fields[0]) {
      return a.fields[0] > b.fields[0] ? a : b;
    }
    return a.fields[1] <= b.fields[1] ? a : b;
  }

  double Evaluate(const PartialRecord& record) const override {
    return record.fields[1];
  }

  double Direct(
      const std::unordered_map<NodeId, double>& values) const override {
    PartialRecord best{{-std::numeric_limits<double>::infinity(), -1.0, 0.0}};
    for (const auto& [source, weight] : weights_) {
      best = Merge(best, PartialRecord{{values.at(source),
                                        static_cast<double>(source), 0.0}});
    }
    return best.fields[1];
  }

  bool SupportsDeltas() const override { return false; }
  int partial_record_bytes() const override {
    return kReadingBytes + kIdTagBytes;
  }
  std::string name() const override { return "argmax"; }
  AggregateKind kind() const override { return AggregateKind::kArgMax; }
  double WeightFor(NodeId source) const override {
    WeightOf(source);
    return 1.0;
  }
};

}  // namespace

std::shared_ptr<const AggregateFunction> MakeAggregateFunction(
    const FunctionSpec& spec) {
  switch (spec.kind) {
    case AggregateKind::kWeightedSum:
      return std::make_shared<WeightedSum>(spec.weights);
    case AggregateKind::kWeightedAverage:
      return std::make_shared<WeightedAverage>(spec.weights);
    case AggregateKind::kWeightedStdDev:
      return std::make_shared<WeightedStdDev>(spec.weights);
    case AggregateKind::kMin:
      return std::make_shared<Extremum>(spec.weights, /*is_min=*/true);
    case AggregateKind::kMax:
      return std::make_shared<Extremum>(spec.weights, /*is_min=*/false);
    case AggregateKind::kCount:
      return std::make_shared<Count>(spec.weights);
    case AggregateKind::kCountAbove:
      return std::make_shared<CountAbove>(spec.weights, spec.threshold);
    case AggregateKind::kArgMax:
      return std::make_shared<ArgMax>(spec.weights);
  }
  M2M_CHECK(false) << "unknown aggregate kind";
}

void FunctionSet::Set(NodeId destination,
                      std::shared_ptr<const AggregateFunction> fn) {
  M2M_CHECK(fn != nullptr);
  functions_[destination] = std::move(fn);
}

const AggregateFunction& FunctionSet::Get(NodeId destination) const {
  auto it = functions_.find(destination);
  M2M_CHECK(it != functions_.end())
      << "no aggregation function for destination " << destination;
  return *it->second;
}

bool FunctionSet::Contains(NodeId destination) const {
  return functions_.contains(destination);
}

}  // namespace m2m
