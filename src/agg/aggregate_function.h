#ifndef M2M_AGG_AGGREGATE_FUNCTION_H_
#define M2M_AGG_AGGREGATE_FUNCTION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/partial_record.h"
#include "common/ids.h"

namespace m2m {

/// A generalized algebraic aggregation function (paper section 2.1):
/// `f_d(v_{s1}..v_{sn}) = e_d(m_d({w_{d,s1}(v_{s1}), ..., w_{d,sn}(v_{sn})}))`
/// with per-source pre-aggregation `w_{d,s}`, an associative/commutative
/// merge `m_d` over constant-size partial records, and an evaluator `e_d`.
///
/// One instance belongs to one destination; the per-source transforms (e.g.
/// weights) are stored inside the instance.
// Defined below; kind() needs the enum.
enum class AggregateKind;

class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  AggregateFunction(const AggregateFunction&) = delete;
  AggregateFunction& operator=(const AggregateFunction&) = delete;

  /// The declarative kind this instance implements; together with
  /// per-source weights and Parameter() it fully describes the function on
  /// the wire (plan dissemination installs exactly this).
  virtual AggregateKind kind() const = 0;

  /// Kind-specific scalar parameter (e.g. kCountAbove's threshold); 0 for
  /// kinds without one.
  virtual double Parameter() const { return 0.0; }

  /// w_{d,s}: transforms one raw reading into a partial record. Requires
  /// `source` to be one of this function's sources.
  virtual PartialRecord PreAggregate(NodeId source, double value) const = 0;

  /// m_d: merges two partial records.
  virtual PartialRecord Merge(const PartialRecord& a,
                              const PartialRecord& b) const = 0;

  /// e_d: final result from the fully merged record.
  virtual double Evaluate(const PartialRecord& record) const = 0;

  /// Reference semantics: the exact result over full inputs, computed
  /// directly (used by tests and runtime verification).
  virtual double Direct(
      const std::unordered_map<NodeId, double>& values) const = 0;

  /// Wire size in bytes of one partial record (excluding the destination
  /// tag). Determines the destination-vertex weight in the per-edge vertex
  /// cover.
  virtual int partial_record_bytes() const = 0;

  /// Whether the function supports incremental maintenance from value
  /// deltas (temporal suppression). True for sum-like records.
  virtual bool SupportsDeltas() const { return true; }

  /// Delta record for a source whose reading changed old -> new. Default:
  /// field-wise PreAggregate(new) - PreAggregate(old), which is correct for
  /// all sum-like records. Must only be called when SupportsDeltas().
  virtual PartialRecord DeltaPreAggregate(NodeId source, double old_value,
                                          double new_value) const;

  /// Whether the delta record is computable from the value change alone
  /// (new - old), without knowing the old value. Required by the temporal
  /// suppression protocol, where only the difference travels (paper
  /// section 3). True for weighted sum and weighted average.
  virtual bool SupportsLinearDeltas() const { return false; }

  /// Delta record from a raw value difference; only valid when
  /// SupportsLinearDeltas().
  virtual PartialRecord LinearDeltaPreAggregate(NodeId source,
                                                double delta) const;

  /// Applies a delta record to a maintained partial record (field-wise sum;
  /// valid for sum-like records).
  PartialRecord ApplyDelta(const PartialRecord& record,
                           const PartialRecord& delta) const;

  /// Worst-case error of the evaluated aggregate when every source's
  /// transmitted value may lag its true reading by up to `epsilon`
  /// (threshold-based temporal suppression, paper section 3: continuous
  /// maintenance "up to desired precision"). Only defined when
  /// SupportsLinearDeltas().
  virtual double SuppressionErrorBound(double epsilon) const;

  virtual std::string name() const = 0;

  /// Sources this function aggregates, ascending.
  virtual std::vector<NodeId> sources() const = 0;

  /// The per-source weight stored with the pre-aggregation function
  /// (serialized into the node tables' <s, d, w_{d,s}> entries). Weightless
  /// kinds report 1.0. Requires `source` to be one of this function's
  /// sources.
  virtual double WeightFor(NodeId source) const = 0;

 protected:
  AggregateFunction() = default;
};

/// Kinds available through the factory.
enum class AggregateKind {
  kWeightedSum,      ///< sum of alpha_s * v_s; 1 field; partial = 4 bytes
  kWeightedAverage,  ///< (sum alpha_s v_s) / n; 2 fields; partial = 6 bytes
  kWeightedStdDev,   ///< population stddev of alpha_s v_s; 3 fields; 10 bytes
  kMin,              ///< minimum reading; 1 field; no delta support
  kMax,              ///< maximum reading; 1 field; no delta support
  kCount,            ///< number of sources reporting; partial = 2 bytes
  /// Number of sources whose reading exceeds FunctionSpec::threshold (event
  /// detection, e.g. "how many motion sensors fired"); supports deltas but
  /// not linear deltas.
  kCountAbove,
  /// Identifier of the source with the maximum reading (e.g. "which sensor
  /// is hottest"); partial = reading + id; no delta support.
  kArgMax,
};

std::string ToString(AggregateKind kind);

/// Declarative description of one destination's function; what workload
/// generators produce and the factory consumes.
struct FunctionSpec {
  AggregateKind kind = AggregateKind::kWeightedSum;
  /// Per-source weights (ignored by the unweighted kinds, which still use
  /// the key set as the source list).
  std::vector<std::pair<NodeId, double>> weights;
  /// Used by kCountAbove.
  double threshold = 0.0;

  friend bool operator==(const FunctionSpec&, const FunctionSpec&) = default;
};

/// Builds a function instance from its spec.
std::shared_ptr<const AggregateFunction> MakeAggregateFunction(
    const FunctionSpec& spec);

/// The functions of all destinations in a workload.
class FunctionSet {
 public:
  FunctionSet() = default;

  FunctionSet(const FunctionSet&) = default;
  FunctionSet& operator=(const FunctionSet&) = default;

  void Set(NodeId destination, std::shared_ptr<const AggregateFunction> fn);
  const AggregateFunction& Get(NodeId destination) const;
  bool Contains(NodeId destination) const;
  size_t size() const { return functions_.size(); }

 private:
  std::unordered_map<NodeId, std::shared_ptr<const AggregateFunction>>
      functions_;
};

}  // namespace m2m

#endif  // M2M_AGG_AGGREGATE_FUNCTION_H_
