#include "routing/milestones.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

namespace {

uint64_t LinkKey(NodeId a, NodeId b) {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | static_cast<uint32_t>(hi);
}

}  // namespace

LinkStabilityModel::LinkStabilityModel(const Topology& topology,
                                       uint64_t seed) {
  const double range = topology.radio_range_m();
  for (NodeId a = 0; a < topology.node_count(); ++a) {
    for (NodeId b : topology.neighbors(a)) {
      if (b < a) continue;
      double frac = Distance(topology.position(a), topology.position(b)) /
                    range;  // in [0, 1]
      // Transient failures are occasional: close links ~0.99, links at the
      // edge of the radio range ~0.75, plus +-0.05 jitter.
      double base = 0.995 - 0.25 * frac;
      uint64_t h = SplitMix64(seed ^ LinkKey(a, b));
      double jitter =
          (static_cast<double>(h >> 11) * 0x1.0p-53 - 0.5) * 0.1;
      stability_[LinkKey(a, b)] = std::clamp(base + jitter, 0.5, 0.999);
    }
  }
}

double LinkStabilityModel::stability(NodeId a, NodeId b) const {
  auto it = stability_.find(LinkKey(a, b));
  M2M_CHECK(it != stability_.end())
      << "no link between " << a << " and " << b;
  return it->second;
}

double LinkStabilityModel::NodeStability(const Topology& topology,
                                         NodeId n) const {
  const auto& neighbors = topology.neighbors(n);
  if (neighbors.empty()) return 1.0;
  double total = 0.0;
  for (NodeId m : neighbors) total += stability(n, m);
  return total / static_cast<double>(neighbors.size());
}

PathSystem::LinkCostFn StabilityAwareLinkCost(const LinkStabilityModel& model,
                                              double penalty) {
  M2M_CHECK_GE(penalty, 0.0);
  return [&model, penalty](NodeId a, NodeId b) {
    return 1.0 + penalty * (1.0 - model.stability(a, b));
  };
}

MilestoneSelector MilestoneSelector::All(int node_count) {
  M2M_CHECK_GT(node_count, 0);
  return MilestoneSelector(std::vector<bool>(node_count, true));
}

MilestoneSelector MilestoneSelector::EndpointsOnly(int node_count) {
  M2M_CHECK_GT(node_count, 0);
  return MilestoneSelector(std::vector<bool>(node_count, false));
}

MilestoneSelector MilestoneSelector::StabilityThreshold(
    const Topology& topology, const LinkStabilityModel& model,
    double threshold) {
  std::vector<bool> is_milestone(topology.node_count());
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    is_milestone[n] = model.NodeStability(topology, n) >= threshold;
  }
  return MilestoneSelector(std::move(is_milestone));
}

bool MilestoneSelector::IsMilestone(NodeId n) const {
  M2M_CHECK(n >= 0 && n < node_count());
  return is_milestone_[n];
}

int MilestoneSelector::milestone_count() const {
  return static_cast<int>(
      std::count(is_milestone_.begin(), is_milestone_.end(), true));
}

}  // namespace m2m
