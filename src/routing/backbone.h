#ifndef M2M_ROUTING_BACKBONE_H_
#define M2M_ROUTING_BACKBONE_H_

#include "routing/path_system.h"
#include "topology/topology.h"

namespace m2m {

/// The node minimizing the sum of hop distances to all others (the
/// 1-median) — a natural backbone root.
NodeId PickCenterNode(const Topology& topology);

/// Aggregation-aware routing bias (the future-work direction the paper's
/// Figure 5 discussion flags: its stock multicast trees "tend to create
/// many edges that are not shared across trees"). Links on the shortest-
/// path tree rooted at `center` cost 1.0; all other links cost
/// `off_backbone_penalty` (> 1). Routes then funnel onto a shared backbone:
/// paths get a little longer, but far more of them overlap, which is
/// exactly what in-network aggregation feeds on. The cost function is a
/// fixed link property, so the consistent-path-system guarantees (and with
/// them Theorem 1) are untouched.
PathSystem::LinkCostFn BackboneBiasedCost(const Topology& topology,
                                          NodeId center,
                                          double off_backbone_penalty);

}  // namespace m2m

#endif  // M2M_ROUTING_BACKBONE_H_
