#include "routing/backbone.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <set>
#include <utility>

#include "common/check.h"

namespace m2m {

NodeId PickCenterNode(const Topology& topology) {
  NodeId best = 0;
  int64_t best_total = -1;
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    std::vector<int> dist = topology.HopDistancesFrom(n);
    int64_t total = 0;
    for (int d : dist) {
      M2M_CHECK_GE(d, 0) << "backbone requires a connected topology";
      total += d;
    }
    if (best_total < 0 || total < best_total) {
      best_total = total;
      best = n;
    }
  }
  return best;
}

PathSystem::LinkCostFn BackboneBiasedCost(const Topology& topology,
                                          NodeId center,
                                          double off_backbone_penalty) {
  M2M_CHECK_GT(off_backbone_penalty, 1.0);
  // BFS tree rooted at the center: the backbone links.
  auto backbone = std::make_shared<std::set<std::pair<NodeId, NodeId>>>();
  std::vector<bool> visited(topology.node_count(), false);
  std::queue<NodeId> frontier;
  visited[center] = true;
  frontier.push(center);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : topology.neighbors(u)) {
      if (visited[v]) continue;
      visited[v] = true;
      backbone->insert({std::min(u, v), std::max(u, v)});
      frontier.push(v);
    }
  }
  return [backbone, off_backbone_penalty](NodeId a, NodeId b) {
    return backbone->contains({std::min(a, b), std::max(a, b)})
               ? 1.0
               : off_backbone_penalty;
  };
}

}  // namespace m2m
