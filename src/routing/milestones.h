#ifndef M2M_ROUTING_MILESTONES_H_
#define M2M_ROUTING_MILESTONES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "routing/path_system.h"
#include "topology/topology.h"

namespace m2m {

/// Per-link stability scores in [0, 1]: the probability that the link is
/// usable in a given round. Deterministic in (topology, seed); longer links
/// are less stable, mirroring radio behavior near the edge of the range.
class LinkStabilityModel {
 public:
  LinkStabilityModel(const Topology& topology, uint64_t seed);

  LinkStabilityModel(const LinkStabilityModel&) = default;
  LinkStabilityModel& operator=(const LinkStabilityModel&) = default;

  /// Stability of link {a, b}; requires the link to exist.
  double stability(NodeId a, NodeId b) const;

  /// Mean stability over a node's incident links (1.0 for isolated nodes).
  double NodeStability(const Topology& topology, NodeId n) const;

 private:
  std::unordered_map<uint64_t, double> stability_;
};

/// Link-cost function for stability-aware routing (paper section 3:
/// routes and milestones may change "if stability of certain routes have
/// changed significantly"). A link of stability s costs
/// `1 + penalty * (1 - s)`, so Dijkstra trades extra hops for dependable
/// links; penalty 0 reduces to hop-count routing.
PathSystem::LinkCostFn StabilityAwareLinkCost(const LinkStabilityModel& model,
                                              double penalty);

/// Global per-node milestone predicate (paper section 3, "Flexibility
/// Trade-Off in Routing using Milestones"). Sources and destinations of a
/// route are always route endpoints regardless of this predicate; the
/// predicate decides which *intermediate* nodes the plan may rely on as
/// convergence points. Selecting milestones by a global node property keeps
/// the milestone-level path system consistent, so Theorem 1 continues to
/// hold on virtual edges.
class MilestoneSelector {
 public:
  /// Every node is a milestone: optimization on physical one-hop edges.
  static MilestoneSelector All(int node_count);

  /// No intermediate milestones: each route is a single virtual edge from
  /// source to destination (maximal routing flexibility, no in-route
  /// aggregation below the endpoints).
  static MilestoneSelector EndpointsOnly(int node_count);

  /// A node is a milestone iff the mean stability of its incident links is
  /// at least `threshold`.
  static MilestoneSelector StabilityThreshold(const Topology& topology,
                                              const LinkStabilityModel& model,
                                              double threshold);

  bool IsMilestone(NodeId n) const;
  int milestone_count() const;
  int node_count() const { return static_cast<int>(is_milestone_.size()); }

 private:
  explicit MilestoneSelector(std::vector<bool> is_milestone)
      : is_milestone_(std::move(is_milestone)) {}

  std::vector<bool> is_milestone_;
};

}  // namespace m2m

#endif  // M2M_ROUTING_MILESTONES_H_
