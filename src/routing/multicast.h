#ifndef M2M_ROUTING_MULTICAST_H_
#define M2M_ROUTING_MULTICAST_H_

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/relation.h"
#include "routing/milestones.h"
#include "routing/path_system.h"

namespace m2m {

/// One directed edge of the multicast forest. With the default "all nodes
/// are milestones" selector this is a physical one-hop edge; with sparser
/// milestone selectors it is a virtual edge whose `segment` is the underlying
/// physical path.
struct ForestEdge {
  DirectedEdge edge;            ///< tail -> head at milestone level.
  std::vector<NodeId> segment;  ///< physical path, tail..head inclusive.
  /// All (source, destination) pairs routed through this edge, i.e. the
  /// relation ~e of the single-edge optimization problem. Deduplicated,
  /// sorted by (source, destination).
  std::vector<SourceDestPair> pairs;

  int hop_length() const { return static_cast<int>(segment.size()) - 1; }
};

/// The set of multicast trees for a many-to-many aggregation workload: one
/// tree per source, rooted at the source and spanning all its destinations,
/// built as the union of the canonical paths of a consistent PathSystem.
/// By construction the trees satisfy the paper's minimality and path-sharing
/// restrictions (checked at build time).
class MulticastForest {
 public:
  /// Builds trees for all tasks. `milestones == nullptr` means every node is
  /// a milestone (optimize on physical one-hop edges).
  MulticastForest(const PathSystem& paths, std::vector<Task> tasks,
                  const MilestoneSelector* milestones = nullptr);

  MulticastForest(const MulticastForest&) = default;
  MulticastForest& operator=(const MulticastForest&) = default;

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<ForestEdge>& edges() const { return edges_; }

  /// Number of nodes in the underlying topology.
  int node_count() const { return node_count_; }

  /// Index of the milestone-level directed edge, or -1 if absent.
  int EdgeIndexOf(DirectedEdge e) const;

  /// Edge indices of the route source -> destination, in path order.
  /// Empty when source == destination. Requires the pair to be in the
  /// relation.
  const std::vector<int>& Route(SourceDestPair pair) const;

  /// Edge indices of the multicast tree rooted at `source` (sources with no
  /// remote destinations have empty trees).
  const std::vector<int>& TreeEdges(NodeId source) const;

  /// Distinct sources with at least one task using them, ascending.
  const std::vector<NodeId>& source_ids() const { return source_ids_; }
  /// Destinations (one per task), ascending.
  const std::vector<NodeId>& destination_ids() const {
    return destination_ids_;
  }

  /// |T_s|: physical node count of the multicast tree rooted at `source`
  /// (counting the source itself; 1 when the tree is empty). Theorem 3.
  int MulticastTreeSize(NodeId source) const;

  /// |A_d|: physical node count of the aggregation tree of destination `d`
  /// (union of its sources' routes). Theorem 3.
  int AggregationTreeSize(NodeId destination) const;

  /// Sum over forest edges of their physical hop length; the per-unit-size
  /// floor of any plan's transmission count.
  int64_t TotalPhysicalHops() const;

  /// Verifies every multicast-tree leaf is a destination of its tree's
  /// source (paper restriction 1).
  bool CheckMinimality() const;

  /// Verifies overlapping routes use identical paths (paper restriction 2):
  /// all routes crossing a milestone edge traverse the same physical
  /// segment, and each tree is a tree (unique parent per node).
  bool CheckSharing() const;

 private:
  int GetOrCreateEdge(const PathSystem& paths, NodeId tail, NodeId head);

  std::vector<Task> tasks_;
  std::vector<ForestEdge> edges_;
  std::unordered_map<DirectedEdge, int, DirectedEdgeHash> edge_index_;
  std::unordered_map<SourceDestPair, std::vector<int>, SourceDestPairHash>
      routes_;
  std::unordered_map<NodeId, std::vector<int>> tree_edges_;
  std::vector<NodeId> source_ids_;
  std::vector<NodeId> destination_ids_;
  std::vector<int> empty_route_;
  int node_count_ = 0;
};

}  // namespace m2m

#endif  // M2M_ROUTING_MULTICAST_H_
