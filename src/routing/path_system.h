#ifndef M2M_ROUTING_PATH_SYSTEM_H_
#define M2M_ROUTING_PATH_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace m2m {

/// A *consistent* all-pairs path system over a topology.
///
/// The paper (section 2.1) requires multicast trees to satisfy (1) minimality
/// and (2) path sharing: whenever node i can reach node j in two multicast
/// trees, the two i->j paths are identical. We guarantee both by
/// construction: every undirected link gets weight `2^40 + epsilon` where
/// epsilon is a deterministic pseudo-random perturbation in [1, 2^27), making
/// all-pairs shortest paths unique with overwhelming probability. Unique
/// shortest paths are closed under subpaths, so the canonical path family
/// {P(u,v)} is consistent: if x lies on P(u,v) then P(u,v) = P(u,x) +
/// P(x,v). Multicast trees built as unions of canonical paths from a common
/// source therefore (a) are trees, and (b) satisfy the path-sharing
/// restriction across trees. Hop count stays the primary routing metric: the
/// perturbation sum along any simple path is below one hop's base weight.
///
/// Storage is lazy and per-target: a dense all-pairs matrix is O(n^2)
/// (~120 GB of next-hop/weight state at 100k nodes), but every consumer only
/// ever routes toward a small set of targets (task destinations, milestone
/// heads, the base station). Each target's shortest-path tree ("column") is
/// materialized by one Dijkstra on first use and cached. Columns are
/// immutable once built and computed by the same deterministic relaxation
/// regardless of build order or thread, so laziness is unobservable: every
/// query answers exactly as the eager all-pairs construction would.
class PathSystem {
 public:
  /// Relative cost of using a link (>= 1.0); hop count times this is the
  /// primary routing metric. The default (null) costs every link 1.0,
  /// making paths hop-count shortest.
  using LinkCostFn = std::function<double(NodeId, NodeId)>;

  /// Defines the path system (no paths are computed yet; each target costs
  /// one O(m log n) Dijkstra on first use). `perturbation_seed` feeds the
  /// per-link epsilon values. A non-null `link_cost` biases routing (e.g.
  /// away from unstable links); paths then minimize summed link cost
  /// instead of pure hop count, and HopDistance reports the integer cost of
  /// the chosen route.
  explicit PathSystem(const Topology& topology,
                      uint64_t perturbation_seed = 0x5eed,
                      const LinkCostFn& link_cost = nullptr);

  /// Copies share already-materialized columns (they are immutable).
  PathSystem(const PathSystem& other);
  PathSystem& operator=(const PathSystem& other);

  int node_count() const { return node_count_; }

  /// Integer route cost of the canonical path u -> v (equals the hop count
  /// under the default link cost); 0 when u == v. For physical hop counts
  /// under custom costs, use Path(u, v).size() - 1.
  int HopDistance(NodeId u, NodeId v) const;

  /// Perturbed path weight (primary: hops; tiebreaker: epsilon sum).
  int64_t PathWeight(NodeId u, NodeId v) const;

  /// First hop on the canonical path u -> v. Requires u != v and v reachable.
  NodeId NextHop(NodeId u, NodeId v) const;

  /// Full canonical path u -> v, inclusive of both endpoints.
  std::vector<NodeId> Path(NodeId u, NodeId v) const;

  /// Maximum hop distance from u to any node.
  int Eccentricity(NodeId u) const;

  /// Verifies the consistency property on all subpaths of P(u, v); used by
  /// tests and by debug validation of multicast construction.
  bool PathIsConsistent(NodeId u, NodeId v) const;

 private:
  /// Shortest-path state toward one target t: weight[u] is the perturbed
  /// path weight u -> t, next_hop[u] the first hop on the canonical path
  /// u -> t (t at u == t, kInvalidNode when unreachable).
  struct Column {
    std::vector<int64_t> weight;
    std::vector<NodeId> next_hop;
  };

  void CheckNode(NodeId n) const;
  /// Returns target t's column, materializing it (one Dijkstra) on first
  /// use. Thread-safe: concurrent builders race to publish, but both
  /// compute the identical column, so the loser's copy is just discarded.
  const Column& ColumnFor(NodeId t) const;
  Column BuildColumn(NodeId t) const;
  /// Path weight u -> v read through whichever endpoint's column is already
  /// materialized (link weights are symmetric, so both agree exactly),
  /// building u's column when neither is.
  int64_t SymmetricWeight(NodeId u, NodeId v) const;

  int node_count_ = 0;
  Topology topology_;
  uint64_t perturbation_seed_ = 0;
  LinkCostFn link_cost_;
  mutable std::mutex columns_mutex_;
  /// Lazily materialized per-target columns, indexed by target id. Entries
  /// are immutable once published and shared across copies.
  mutable std::vector<std::shared_ptr<const Column>> columns_;
};

}  // namespace m2m

#endif  // M2M_ROUTING_PATH_SYSTEM_H_
