#ifndef M2M_ROUTING_PATH_SYSTEM_H_
#define M2M_ROUTING_PATH_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace m2m {

/// A *consistent* all-pairs path system over a topology.
///
/// The paper (section 2.1) requires multicast trees to satisfy (1) minimality
/// and (2) path sharing: whenever node i can reach node j in two multicast
/// trees, the two i->j paths are identical. We guarantee both by
/// construction: every undirected link gets weight `2^40 + epsilon` where
/// epsilon is a deterministic pseudo-random perturbation in [1, 2^27), making
/// all-pairs shortest paths unique with overwhelming probability. Unique
/// shortest paths are closed under subpaths, so the canonical path family
/// {P(u,v)} is consistent: if x lies on P(u,v) then P(u,v) = P(u,x) +
/// P(x,v). Multicast trees built as unions of canonical paths from a common
/// source therefore (a) are trees, and (b) satisfy the path-sharing
/// restriction across trees. Hop count stays the primary routing metric: the
/// perturbation sum along any simple path is below one hop's base weight.
class PathSystem {
 public:
  /// Relative cost of using a link (>= 1.0); hop count times this is the
  /// primary routing metric. The default (null) costs every link 1.0,
  /// making paths hop-count shortest.
  using LinkCostFn = std::function<double(NodeId, NodeId)>;

  /// Computes all-pairs unique shortest paths; O(n * (m log n)).
  /// `perturbation_seed` feeds the per-link epsilon values. A non-null
  /// `link_cost` biases routing (e.g. away from unstable links); paths then
  /// minimize summed link cost instead of pure hop count, and HopDistance
  /// reports the integer cost of the chosen route.
  explicit PathSystem(const Topology& topology,
                      uint64_t perturbation_seed = 0x5eed,
                      const LinkCostFn& link_cost = nullptr);

  PathSystem(const PathSystem&) = default;
  PathSystem& operator=(const PathSystem&) = default;

  int node_count() const { return node_count_; }

  /// Integer route cost of the canonical path u -> v (equals the hop count
  /// under the default link cost); 0 when u == v. For physical hop counts
  /// under custom costs, use Path(u, v).size() - 1.
  int HopDistance(NodeId u, NodeId v) const;

  /// Perturbed path weight (primary: hops; tiebreaker: epsilon sum).
  int64_t PathWeight(NodeId u, NodeId v) const;

  /// First hop on the canonical path u -> v. Requires u != v and v reachable.
  NodeId NextHop(NodeId u, NodeId v) const;

  /// Full canonical path u -> v, inclusive of both endpoints.
  std::vector<NodeId> Path(NodeId u, NodeId v) const;

  /// Maximum hop distance from u to any node.
  int Eccentricity(NodeId u) const;

  /// Verifies the consistency property on all subpaths of P(u, v); used by
  /// tests and by debug validation of multicast construction.
  bool PathIsConsistent(NodeId u, NodeId v) const;

 private:
  void CheckNode(NodeId n) const;
  int Index(NodeId u, NodeId v) const { return u * node_count_ + v; }

  int node_count_ = 0;
  // Flattened n x n matrices.
  std::vector<int64_t> weight_;
  std::vector<NodeId> next_hop_;
};

}  // namespace m2m

#endif  // M2M_ROUTING_PATH_SYSTEM_H_
