#include "routing/path_system.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

namespace {

// Base weight per hop. Epsilon sums along any simple path (< 2^13 hops of
// < 2^27 each) stay below this, so hop count remains the primary metric.
constexpr int64_t kHopBase = int64_t{1} << 40;
constexpr int64_t kUnreachable = std::numeric_limits<int64_t>::max();

int64_t LinkWeight(NodeId a, NodeId b, uint64_t seed,
                   const PathSystem::LinkCostFn& link_cost) {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  uint64_t h = SplitMix64(seed ^ ((static_cast<uint64_t>(lo) << 32) |
                                  static_cast<uint32_t>(hi)));
  int64_t epsilon = static_cast<int64_t>(h & ((uint64_t{1} << 27) - 1)) + 1;
  double cost = 1.0;
  if (link_cost != nullptr) {
    cost = link_cost(a, b);
    M2M_CHECK_GE(cost, 1.0) << "link cost below 1.0";
    M2M_CHECK_LE(cost, 1024.0) << "link cost too large";
  }
  return static_cast<int64_t>(cost * kHopBase) + epsilon;
}

}  // namespace

PathSystem::PathSystem(const Topology& topology, uint64_t perturbation_seed,
                       const LinkCostFn& link_cost)
    : node_count_(topology.node_count()),
      topology_(topology),
      perturbation_seed_(perturbation_seed),
      link_cost_(link_cost),
      columns_(topology.node_count()) {}

PathSystem::PathSystem(const PathSystem& other)
    : node_count_(other.node_count_),
      topology_(other.topology_),
      perturbation_seed_(other.perturbation_seed_),
      link_cost_(other.link_cost_) {
  std::lock_guard<std::mutex> lock(other.columns_mutex_);
  columns_ = other.columns_;
}

PathSystem& PathSystem::operator=(const PathSystem& other) {
  if (this == &other) return *this;
  std::vector<std::shared_ptr<const Column>> snapshot;
  {
    std::lock_guard<std::mutex> lock(other.columns_mutex_);
    snapshot = other.columns_;
  }
  node_count_ = other.node_count_;
  topology_ = other.topology_;
  perturbation_seed_ = other.perturbation_seed_;
  link_cost_ = other.link_cost_;
  std::lock_guard<std::mutex> lock(columns_mutex_);
  columns_ = std::move(snapshot);
  return *this;
}

PathSystem::Column PathSystem::BuildColumn(NodeId t) const {
  const int n = node_count_;
  Column column;
  column.weight.assign(n, kUnreachable);
  column.next_hop.assign(n, kInvalidNode);

  // One Dijkstra from target t: toward[u] is u's neighbor on the unique
  // shortest path from u toward t, i.e. NextHop(u, t).
  using QueueEntry = std::pair<int64_t, NodeId>;
  std::vector<int64_t>& dist = column.weight;
  std::vector<NodeId> toward(n, kInvalidNode);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist[t] = 0;
  queue.push({0, t});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d != dist[u]) continue;
    for (NodeId v : topology_.neighbors(u)) {
      int64_t w = LinkWeight(u, v, perturbation_seed_, link_cost_);
      if (dist[u] != kUnreachable && dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        toward[v] = u;
        queue.push({dist[v], v});
      }
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    column.next_hop[u] = (u == t) ? t : toward[u];
  }
  return column;
}

const PathSystem::Column& PathSystem::ColumnFor(NodeId t) const {
  {
    std::lock_guard<std::mutex> lock(columns_mutex_);
    const std::shared_ptr<const Column>& existing = columns_[t];
    if (existing != nullptr) return *existing;
  }
  // Build outside the lock: a concurrent racer computes the identical
  // column, and whichever publishes second is discarded.
  auto built = std::make_shared<const Column>(BuildColumn(t));
  std::lock_guard<std::mutex> lock(columns_mutex_);
  std::shared_ptr<const Column>& slot = columns_[t];
  if (slot == nullptr) slot = std::move(built);
  return *slot;
}

int64_t PathSystem::SymmetricWeight(NodeId u, NodeId v) const {
  if (u == v) return 0;
  {
    std::lock_guard<std::mutex> lock(columns_mutex_);
    if (columns_[v] != nullptr) return columns_[v]->weight[u];
    if (columns_[u] != nullptr) return columns_[u]->weight[v];
  }
  // Neither endpoint is materialized: build u's column, so query patterns
  // with a fixed first argument (eccentricity scans, base-station distance
  // sweeps) amortize to a single Dijkstra.
  return ColumnFor(u).weight[v];
}

void PathSystem::CheckNode(NodeId n) const {
  M2M_CHECK(n >= 0 && n < node_count_) << "node id " << n << " out of range";
}

int PathSystem::HopDistance(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  int64_t w = SymmetricWeight(u, v);
  M2M_CHECK_NE(w, kUnreachable) << "node " << v << " unreachable from " << u;
  return static_cast<int>(w >> 40);
}

int64_t PathSystem::PathWeight(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  return SymmetricWeight(u, v);
}

NodeId PathSystem::NextHop(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  M2M_CHECK_NE(u, v);
  // Under the default link cost the direct link (one hop base weight plus
  // epsilon < 2^27) strictly beats any detour (>= two hop base weights), so
  // adjacency decides the next hop without a column. This keeps the default
  // milestone policy (every node a milestone => every forest edge a single
  // physical hop) from materializing a column per route node.
  if (link_cost_ == nullptr && topology_.AreNeighbors(u, v)) return v;
  NodeId next = ColumnFor(v).next_hop[u];
  M2M_CHECK_NE(next, kInvalidNode)
      << "node " << v << " unreachable from " << u;
  return next;
}

std::vector<NodeId> PathSystem::Path(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  std::vector<NodeId> path;
  path.push_back(u);
  NodeId cursor = u;
  while (cursor != v) {
    cursor = NextHop(cursor, v);
    path.push_back(cursor);
    M2M_CHECK_LE(path.size(), static_cast<size_t>(node_count_))
        << "next-hop cycle detected";
  }
  return path;
}

int PathSystem::Eccentricity(NodeId u) const {
  CheckNode(u);
  // Distances are symmetric, so u's own column holds d(u, v) for every v —
  // one Dijkstra instead of n.
  const Column& column = ColumnFor(u);
  int best = 0;
  for (NodeId v = 0; v < node_count_; ++v) {
    int64_t w = column.weight[v];
    M2M_CHECK_NE(w, kUnreachable) << "node " << v << " unreachable from "
                                  << u;
    best = std::max(best, static_cast<int>(w >> 40));
  }
  return best;
}

bool PathSystem::PathIsConsistent(NodeId u, NodeId v) const {
  std::vector<NodeId> path = Path(u, v);
  for (size_t i = 0; i < path.size(); ++i) {
    for (size_t j = i; j < path.size(); ++j) {
      std::vector<NodeId> sub = Path(path[i], path[j]);
      if (sub.size() != j - i + 1) return false;
      if (!std::equal(sub.begin(), sub.end(), path.begin() + i)) return false;
    }
  }
  return true;
}

}  // namespace m2m
