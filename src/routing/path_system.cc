#include "routing/path_system.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

namespace {

// Base weight per hop. Epsilon sums along any simple path (< 2^13 hops of
// < 2^27 each) stay below this, so hop count remains the primary metric.
constexpr int64_t kHopBase = int64_t{1} << 40;
constexpr int64_t kUnreachable = std::numeric_limits<int64_t>::max();

int64_t LinkWeight(NodeId a, NodeId b, uint64_t seed,
                   const PathSystem::LinkCostFn& link_cost) {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  uint64_t h = SplitMix64(seed ^ ((static_cast<uint64_t>(lo) << 32) |
                                  static_cast<uint32_t>(hi)));
  int64_t epsilon = static_cast<int64_t>(h & ((uint64_t{1} << 27) - 1)) + 1;
  double cost = 1.0;
  if (link_cost != nullptr) {
    cost = link_cost(a, b);
    M2M_CHECK_GE(cost, 1.0) << "link cost below 1.0";
    M2M_CHECK_LE(cost, 1024.0) << "link cost too large";
  }
  return static_cast<int64_t>(cost * kHopBase) + epsilon;
}

}  // namespace

PathSystem::PathSystem(const Topology& topology, uint64_t perturbation_seed,
                       const LinkCostFn& link_cost)
    : node_count_(topology.node_count()) {
  const int n = node_count_;
  weight_.assign(static_cast<size_t>(n) * n, kUnreachable);
  next_hop_.assign(static_cast<size_t>(n) * n, kInvalidNode);

  // One Dijkstra per target t: parent[u] is u's neighbor on the unique
  // shortest path from u toward t, i.e. NextHop(u, t).
  using QueueEntry = std::pair<int64_t, NodeId>;
  std::vector<int64_t> dist(n);
  std::vector<NodeId> toward(n);
  for (NodeId t = 0; t < n; ++t) {
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::fill(toward.begin(), toward.end(), kInvalidNode);
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    dist[t] = 0;
    queue.push({0, t});
    while (!queue.empty()) {
      auto [d, u] = queue.top();
      queue.pop();
      if (d != dist[u]) continue;
      for (NodeId v : topology.neighbors(u)) {
        int64_t w = LinkWeight(u, v, perturbation_seed, link_cost);
        if (dist[u] != kUnreachable && dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          toward[v] = u;
          queue.push({dist[v], v});
        }
      }
    }
    for (NodeId u = 0; u < n; ++u) {
      weight_[Index(u, t)] = dist[u];
      next_hop_[Index(u, t)] = (u == t) ? t : toward[u];
    }
  }
}

void PathSystem::CheckNode(NodeId n) const {
  M2M_CHECK(n >= 0 && n < node_count_) << "node id " << n << " out of range";
}

int PathSystem::HopDistance(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  int64_t w = weight_[Index(u, v)];
  M2M_CHECK_NE(w, kUnreachable) << "node " << v << " unreachable from " << u;
  return static_cast<int>(w >> 40);
}

int64_t PathSystem::PathWeight(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  return weight_[Index(u, v)];
}

NodeId PathSystem::NextHop(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  M2M_CHECK_NE(u, v);
  NodeId next = next_hop_[Index(u, v)];
  M2M_CHECK_NE(next, kInvalidNode)
      << "node " << v << " unreachable from " << u;
  return next;
}

std::vector<NodeId> PathSystem::Path(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  std::vector<NodeId> path;
  path.push_back(u);
  NodeId cursor = u;
  while (cursor != v) {
    cursor = NextHop(cursor, v);
    path.push_back(cursor);
    M2M_CHECK_LE(path.size(), static_cast<size_t>(node_count_))
        << "next-hop cycle detected";
  }
  return path;
}

int PathSystem::Eccentricity(NodeId u) const {
  CheckNode(u);
  int best = 0;
  for (NodeId v = 0; v < node_count_; ++v) {
    best = std::max(best, HopDistance(u, v));
  }
  return best;
}

bool PathSystem::PathIsConsistent(NodeId u, NodeId v) const {
  std::vector<NodeId> path = Path(u, v);
  for (size_t i = 0; i < path.size(); ++i) {
    for (size_t j = i; j < path.size(); ++j) {
      std::vector<NodeId> sub = Path(path[i], path[j]);
      if (sub.size() != j - i + 1) return false;
      if (!std::equal(sub.begin(), sub.end(), path.begin() + i)) return false;
    }
  }
  return true;
}

}  // namespace m2m
