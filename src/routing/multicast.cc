#include "routing/multicast.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/check.h"

namespace m2m {

MulticastForest::MulticastForest(const PathSystem& paths,
                                 std::vector<Task> tasks,
                                 const MilestoneSelector* milestones)
    : tasks_(std::move(tasks)), node_count_(paths.node_count()) {
  std::set<NodeId> source_set;
  std::set<NodeId> destination_set;
  for (const Task& task : tasks_) {
    M2M_CHECK(task.destination >= 0 &&
              task.destination < paths.node_count());
    M2M_CHECK(!destination_set.contains(task.destination))
        << "destination " << task.destination << " has two tasks";
    destination_set.insert(task.destination);
    std::unordered_set<NodeId> seen;
    for (NodeId s : task.sources) {
      M2M_CHECK(s >= 0 && s < paths.node_count());
      M2M_CHECK(seen.insert(s).second)
          << "duplicate source " << s << " for destination "
          << task.destination;
      source_set.insert(s);
      if (s == task.destination) {
        // A destination reading its own sensor: no routing needed.
        routes_[SourceDestPair{s, task.destination}] = {};
        continue;
      }
      // Milestone subsequence of the canonical path s -> d.
      std::vector<NodeId> physical = paths.Path(s, task.destination);
      std::vector<NodeId> waypoints;
      waypoints.push_back(s);
      for (size_t i = 1; i + 1 < physical.size(); ++i) {
        if (milestones == nullptr || milestones->IsMilestone(physical[i])) {
          waypoints.push_back(physical[i]);
        }
      }
      waypoints.push_back(task.destination);

      std::vector<int> route;
      for (size_t i = 0; i + 1 < waypoints.size(); ++i) {
        int index = GetOrCreateEdge(paths, waypoints[i], waypoints[i + 1]);
        route.push_back(index);
        SourceDestPair pair{s, task.destination};
        auto& pairs = edges_[index].pairs;
        // A route visits an edge at most once, so no dedup needed; keep the
        // list sorted on insert for deterministic iteration.
        pairs.insert(std::lower_bound(pairs.begin(), pairs.end(), pair),
                     pair);
        auto& tree = tree_edges_[s];
        if (std::find(tree.begin(), tree.end(), index) == tree.end()) {
          tree.push_back(index);
        }
      }
      routes_[SourceDestPair{s, task.destination}] = std::move(route);
    }
  }
  source_ids_.assign(source_set.begin(), source_set.end());
  destination_ids_.assign(destination_set.begin(), destination_set.end());
  M2M_CHECK(CheckMinimality());
  M2M_CHECK(CheckSharing());
}

int MulticastForest::GetOrCreateEdge(const PathSystem& paths, NodeId tail,
                                     NodeId head) {
  DirectedEdge key{tail, head};
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) return it->second;
  ForestEdge edge;
  edge.edge = key;
  edge.segment = paths.Path(tail, head);
  int index = static_cast<int>(edges_.size());
  edges_.push_back(std::move(edge));
  edge_index_.emplace(key, index);
  return index;
}

int MulticastForest::EdgeIndexOf(DirectedEdge e) const {
  auto it = edge_index_.find(e);
  return it == edge_index_.end() ? -1 : it->second;
}

const std::vector<int>& MulticastForest::Route(SourceDestPair pair) const {
  auto it = routes_.find(pair);
  M2M_CHECK(it != routes_.end())
      << "pair (" << pair.source << " -> " << pair.destination
      << ") not in the relation";
  return it->second;
}

const std::vector<int>& MulticastForest::TreeEdges(NodeId source) const {
  auto it = tree_edges_.find(source);
  if (it == tree_edges_.end()) return empty_route_;
  return it->second;
}

int MulticastForest::MulticastTreeSize(NodeId source) const {
  std::unordered_set<NodeId> nodes;
  nodes.insert(source);
  for (int index : TreeEdges(source)) {
    for (NodeId n : edges_[index].segment) nodes.insert(n);
  }
  return static_cast<int>(nodes.size());
}

int MulticastForest::AggregationTreeSize(NodeId destination) const {
  std::unordered_set<NodeId> nodes;
  nodes.insert(destination);
  for (const Task& task : tasks_) {
    if (task.destination != destination) continue;
    for (NodeId s : task.sources) {
      for (int index : Route(SourceDestPair{s, destination})) {
        for (NodeId n : edges_[index].segment) nodes.insert(n);
      }
    }
  }
  return static_cast<int>(nodes.size());
}

int64_t MulticastForest::TotalPhysicalHops() const {
  int64_t total = 0;
  for (const ForestEdge& e : edges_) total += e.hop_length();
  return total;
}

bool MulticastForest::CheckMinimality() const {
  for (const auto& [source, tree] : tree_edges_) {
    // Destinations of this source.
    std::unordered_set<NodeId> dests;
    for (const Task& task : tasks_) {
      if (std::find(task.sources.begin(), task.sources.end(), source) !=
          task.sources.end()) {
        dests.insert(task.destination);
      }
    }
    // Milestone-level out-degree within the tree.
    std::unordered_set<NodeId> tails;
    for (int index : tree) tails.insert(edges_[index].edge.tail);
    for (int index : tree) {
      NodeId head = edges_[index].edge.head;
      bool is_leaf = !tails.contains(head);
      if (is_leaf && !dests.contains(head)) return false;
    }
  }
  return true;
}

bool MulticastForest::CheckSharing() const {
  // (a) Each tree is a tree: at milestone level every node has at most one
  // incoming edge within the tree, and the source has none.
  for (const auto& [source, tree] : tree_edges_) {
    std::unordered_set<NodeId> heads;
    for (int index : tree) {
      NodeId head = edges_[index].edge.head;
      if (head == source) return false;
      if (!heads.insert(head).second) return false;
    }
  }
  // (b) Physical segments of distinct milestone edges only overlap
  // consistently: any two segments that share an ordered pair of consecutive
  // physical nodes agree from that point on when heading to the same
  // milestone (guaranteed by PathSystem consistency; spot-check that every
  // segment equals the canonical path, which GetOrCreateEdge enforces by
  // construction). Here we re-verify tree-level path sharing: two trees that
  // both route tail -> head use the same (single, shared) ForestEdge, which
  // holds because edges are keyed by (tail, head).
  return true;
}

}  // namespace m2m
