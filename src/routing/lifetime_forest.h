#ifndef M2M_ROUTING_LIFETIME_FOREST_H_
#define M2M_ROUTING_LIFETIME_FOREST_H_

#include <vector>

#include "common/ids.h"
#include "common/relation.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "topology/topology.h"

namespace m2m {

/// Residual-energy-aware link cost (Buragohain et al., "Power Aware Routing
/// for Sensor Databases"): a link costs more the more depleted its
/// endpoints are, steering routes away from nearly-exhausted relays.
/// `residual_fraction[n]` is node n's remaining battery as a fraction of
/// its initial charge (clamped to [0, 1] here). The returned cost is
///   1 + penalty * ((1 - r_a) + (1 - r_b)) / 2
/// clamped to PathSystem's accepted [1, 1024] cost range, so any penalty is
/// safe. Full batteries everywhere give a constant cost of exactly 1.0 —
/// byte-identical paths to the default hop-count metric (the
/// battery-feature-off differential relies on this).
PathSystem::LinkCostFn ResidualEnergyLinkCost(
    std::vector<double> residual_fraction, double penalty);

/// Knobs for the lifetime-maximizing forest builder.
struct LifetimeForestOptions {
  /// Candidate forests to try (>= 1). Iteration 0 uses the pure residual
  /// cost; each later iteration additionally penalizes the previous
  /// iteration's bottleneck node's links.
  int iterations = 4;
  /// Residual-depletion cost penalty (ResidualEnergyLinkCost).
  double residual_penalty = 8.0;
  /// Additive per-iteration cost surcharge on the bottleneck's links.
  double bottleneck_step = 64.0;
  /// Relative per-unit TX/RX load weights for the bottleneck metric. The
  /// defaults mirror the Mica2 per-byte energies (16.9 / 6.25 uJ) without
  /// depending on sim/ — routing stays a leaf library.
  double tx_weight = 16.9;
  double rx_weight = 6.25;
  /// Perturbation seed for every candidate PathSystem (kept at the
  /// default so candidate 0 with zero penalty is the legacy forest).
  uint64_t perturbation_seed = 0x5eed;
};

/// Diagnostics from BuildLifetimeMaxForest.
struct LifetimeForestStats {
  int iterations_run = 0;
  /// Iteration whose forest was kept (ties break earliest).
  int best_iteration = 0;
  /// min over loaded nodes of residual_mj / load of the kept forest — the
  /// max-min lifetime objective, in rounds-to-first-death units under the
  /// load proxy.
  double best_min_lifetime = 0.0;
  /// Same metric for the plain hop-count forest (the paper's min-cost
  /// builder), for comparison.
  double baseline_min_lifetime = 0.0;
};

/// Per-node relay load proxy of a forest: every physical hop of every edge
/// charges tx_weight * |pairs| at its transmitter and rx_weight * |pairs|
/// at its receiver. |pairs| (the source-destination pairs routed through
/// the edge) upper-bounds the units the hop will carry; the planner's
/// covers only shrink it, so the proxy ranks relay hot spots correctly
/// without routing/ knowing anything about plans.
std::vector<double> ForestNodeLoad(const MulticastForest& forest,
                                   double tx_weight, double rx_weight);

/// Lifetime-maximizing multicast forest (Kuo et al.-style max-min residual
/// energy): iteratively reweights links — residual-energy costs first, then
/// escalating surcharges on the current bottleneck node — and keeps the
/// candidate maximizing min_n residual_mj[n] / load[n]. Every candidate is
/// built from a consistent PathSystem, so the returned forest satisfies the
/// paper's minimality and path-sharing restrictions (Theorem 1 still
/// applies) regardless of which iteration wins. Deterministic: same
/// inputs, same forest.
MulticastForest BuildLifetimeMaxForest(const Topology& topology,
                                       std::vector<Task> tasks,
                                       const std::vector<double>& residual_mj,
                                       const LifetimeForestOptions& options = {},
                                       LifetimeForestStats* stats = nullptr);

}  // namespace m2m

#endif  // M2M_ROUTING_LIFETIME_FOREST_H_
