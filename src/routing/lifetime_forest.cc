#include "routing/lifetime_forest.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "common/check.h"

namespace m2m {

namespace {

/// min over loaded nodes of residual_mj / load; +inf when nothing is
/// loaded (empty workloads have unbounded lifetime).
double MinLifetime(const std::vector<double>& residual_mj,
                   const std::vector<double>& load) {
  double min_lifetime = std::numeric_limits<double>::infinity();
  for (size_t n = 0; n < load.size(); ++n) {
    if (load[n] <= 0.0) continue;
    min_lifetime = std::min(min_lifetime, residual_mj[n] / load[n]);
  }
  return min_lifetime;
}

/// The most-burdened node: argmin residual / load over loaded nodes (ties
/// break lowest id); kInvalidNode when nothing is loaded.
NodeId Bottleneck(const std::vector<double>& residual_mj,
                  const std::vector<double>& load) {
  NodeId bottleneck = kInvalidNode;
  double worst = std::numeric_limits<double>::infinity();
  for (size_t n = 0; n < load.size(); ++n) {
    if (load[n] <= 0.0) continue;
    const double lifetime = residual_mj[n] / load[n];
    if (lifetime < worst) {
      worst = lifetime;
      bottleneck = static_cast<NodeId>(n);
    }
  }
  return bottleneck;
}

}  // namespace

PathSystem::LinkCostFn ResidualEnergyLinkCost(
    std::vector<double> residual_fraction, double penalty) {
  M2M_CHECK_GE(penalty, 0.0);
  return [residual = std::move(residual_fraction), penalty](NodeId a,
                                                            NodeId b) {
    const double ra = std::clamp(residual[a], 0.0, 1.0);
    const double rb = std::clamp(residual[b], 0.0, 1.0);
    const double cost = 1.0 + penalty * ((1.0 - ra) + (1.0 - rb)) / 2.0;
    return std::min(cost, 1024.0);
  };
}

std::vector<double> ForestNodeLoad(const MulticastForest& forest,
                                   double tx_weight, double rx_weight) {
  std::vector<double> load(forest.node_count(), 0.0);
  for (const ForestEdge& edge : forest.edges()) {
    const double units = static_cast<double>(edge.pairs.size());
    for (size_t hop = 0; hop + 1 < edge.segment.size(); ++hop) {
      load[edge.segment[hop]] += tx_weight * units;
      load[edge.segment[hop + 1]] += rx_weight * units;
    }
  }
  return load;
}

MulticastForest BuildLifetimeMaxForest(
    const Topology& topology, std::vector<Task> tasks,
    const std::vector<double>& residual_mj,
    const LifetimeForestOptions& options, LifetimeForestStats* stats) {
  M2M_CHECK_EQ(static_cast<int>(residual_mj.size()), topology.node_count());
  M2M_CHECK_GE(options.iterations, 1);

  // Normalize residuals to fractions of the best-charged node: the cost
  // function cares about *relative* depletion, and the builder then needs
  // no knowledge of initial charges.
  double max_residual = 0.0;
  for (double r : residual_mj) {
    M2M_CHECK_GE(r, 0.0);
    max_residual = std::max(max_residual, r);
  }
  std::vector<double> fraction(residual_mj.size(), 1.0);
  if (max_residual > 0.0) {
    for (size_t n = 0; n < residual_mj.size(); ++n) {
      fraction[n] = residual_mj[n] / max_residual;
    }
  }

  if (stats != nullptr) {
    PathSystem hop_paths(topology, options.perturbation_seed);
    MulticastForest baseline(hop_paths, tasks);
    stats->baseline_min_lifetime = MinLifetime(
        residual_mj, ForestNodeLoad(baseline, options.tx_weight,
                                    options.rx_weight));
  }

  // Iterative max-min reweighting: start from residual-aware costs, then
  // keep surcharging whichever node the current candidate burdens most,
  // forcing later candidates to route around it. Keep the best candidate
  // seen (earliest on ties — determinism).
  std::vector<double> surcharge(residual_mj.size(), 0.0);
  std::optional<MulticastForest> best;
  double best_lifetime = -1.0;
  int best_iteration = 0;
  int iterations_run = 0;
  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    const PathSystem::LinkCostFn residual_cost =
        ResidualEnergyLinkCost(fraction, options.residual_penalty);
    PathSystem::LinkCostFn cost = [&residual_cost, &surcharge](NodeId a,
                                                               NodeId b) {
      const double c =
          residual_cost(a, b) + (surcharge[a] + surcharge[b]) / 2.0;
      return std::min(c, 1024.0);
    };
    PathSystem paths(topology, options.perturbation_seed, cost);
    MulticastForest candidate(paths, tasks);
    const std::vector<double> load =
        ForestNodeLoad(candidate, options.tx_weight, options.rx_weight);
    const double lifetime = MinLifetime(residual_mj, load);
    ++iterations_run;
    if (lifetime > best_lifetime) {
      best_lifetime = lifetime;
      best_iteration = iteration;
      best = std::move(candidate);
    }
    const NodeId bottleneck = Bottleneck(residual_mj, load);
    if (bottleneck == kInvalidNode) break;  // Unloaded: nothing to shift.
    surcharge[bottleneck] += options.bottleneck_step;
  }
  M2M_CHECK(best.has_value());

  if (stats != nullptr) {
    stats->iterations_run = iterations_run;
    stats->best_iteration = best_iteration;
    stats->best_min_lifetime = best_lifetime;
  }
  return *std::move(best);
}

}  // namespace m2m
