#include "obs/trace.h"

#include <sstream>

namespace m2m::obs {

namespace {

const char* ControlKindName(ControlKind kind) {
  switch (kind) {
    case ControlKind::kReport:
      return "report";
    case ControlKind::kReportAck:
      return "reportack";
    case ControlKind::kImage:
      return "image";
    case ControlKind::kBump:
      return "bump";
    case ControlKind::kInstallAck:
      return "ack";
  }
  return "?";
}

}  // namespace

std::string TraceEvent::Render() const {
  switch (kind) {
    case Kind::kText:
      return text;
    case Kind::kSend: {
      std::ostringstream line;
      line << "t" << time << " tx " << from << ">" << to << " m"
           << message_id << " a" << attempt << " b" << payload_bytes << " ";
      switch (outcome) {
        case SendOutcome::kRx:
          line << "rx";
          break;
        case SendOutcome::kDuplicate:
          line << "dup";
          break;
        case SendOutcome::kEpochRejected:
          line << "epoch";
          break;
        case SendOutcome::kDropped:
          line << "drop@" << drop_hop;
          break;
        case SendOutcome::kDeadRecipient:
          line << "dead";
          break;
        case SendOutcome::kCorrupt:
          line << "corrupt";
          break;
      }
      if (ack_lost) line << "+acklost";
      return line.str();
    }
    case Kind::kGiveUp: {
      std::ostringstream line;
      line << "t" << time << " giveup " << from << ">" << to << " m"
           << message_id;
      return line.str();
    }
    case Kind::kSuspect: {
      std::ostringstream line;
      line << "r" << time << " suspect " << from << ">" << to;
      return line.str();
    }
    case Kind::kControl: {
      std::ostringstream line;
      line << "r" << time << " ctrl " << ControlKindName(control) << " "
           << from << ">" << to << " b" << payload_bytes << " delivered";
      return line.str();
    }
    case Kind::kReplan: {
      std::ostringstream line;
      line << "r" << time << " replan epoch=" << epoch
           << " links=" << failed_links << " dead=" << dead_nodes
           << " images=" << images << " bumps=" << bumps
           << " reused=" << edges_reused << " reopt=" << edges_reoptimized;
      return line.str();
    }
  }
  return {};
}

void RoundTrace::set_capacity(size_t capacity) {
  capacity_ = capacity;
  if (capacity_ > 0) {
    while (events_.size() > capacity_) events_.pop_front();
  }
}

void RoundTrace::Append(TraceEvent event) {
  ++total_appended_;
  events_.push_back(std::move(event));
  if (capacity_ > 0 && events_.size() > capacity_) events_.pop_front();
}

void RoundTrace::Text(std::string line) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kText;
  event.text = std::move(line);
  Append(std::move(event));
}

void RoundTrace::Send(int tick, NodeId from, NodeId to, int message_id,
                      int attempt, int payload_bytes, SendOutcome outcome,
                      bool ack_lost, int drop_hop) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSend;
  event.time = tick;
  event.from = from;
  event.to = to;
  event.message_id = message_id;
  event.attempt = attempt;
  event.payload_bytes = payload_bytes;
  event.outcome = outcome;
  event.ack_lost = ack_lost;
  event.drop_hop = drop_hop;
  Append(std::move(event));
}

void RoundTrace::GiveUp(int tick, NodeId from, NodeId to, int message_id) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kGiveUp;
  event.time = tick;
  event.from = from;
  event.to = to;
  event.message_id = message_id;
  Append(std::move(event));
}

void RoundTrace::Suspect(int round, NodeId monitor, NodeId neighbor) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSuspect;
  event.time = round;
  event.from = monitor;
  event.to = neighbor;
  Append(std::move(event));
}

void RoundTrace::Control(int round, ControlKind kind, NodeId origin,
                         NodeId target, size_t payload_bytes) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kControl;
  event.time = round;
  event.control = kind;
  event.from = origin;
  event.to = target;
  event.payload_bytes = static_cast<int>(payload_bytes);
  Append(std::move(event));
}

void RoundTrace::Replan(int round, uint32_t epoch, int failed_links,
                        int dead_nodes, int images, int bumps,
                        int edges_reused, int edges_reoptimized) {
  TraceEvent event;
  event.kind = TraceEvent::Kind::kReplan;
  event.time = round;
  event.epoch = epoch;
  event.failed_links = failed_links;
  event.dead_nodes = dead_nodes;
  event.images = images;
  event.bumps = bumps;
  event.edges_reused = edges_reused;
  event.edges_reoptimized = edges_reoptimized;
  Append(std::move(event));
}

size_t RoundTrace::RetainedBytes() const {
  size_t bytes = events_.size() * sizeof(TraceEvent);
  for (const TraceEvent& event : events_) bytes += event.text.capacity();
  return bytes;
}

std::string RoundTrace::ToString() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    out += event.Render();
    out += '\n';
  }
  return out;
}

void RoundTrace::Clear() {
  events_.clear();
  total_appended_ = 0;
}

}  // namespace m2m::obs
