#ifndef M2M_OBS_TRACE_H_
#define M2M_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>

#include "common/ids.h"

namespace m2m::obs {

/// What the runtime did with one data-plane transmission attempt.
enum class SendOutcome : uint8_t {
  kRx,             ///< Fresh delivery, decoded and merged.
  kDuplicate,      ///< Delivered but suppressed by receiver dedup.
  kEpochRejected,  ///< Delivered but dropped whole by the epoch gate.
  kDropped,        ///< Lost mid-segment (drop_hop = 1-based failing hop).
  kDeadRecipient,  ///< Recipient is not alive this round.
  kCorrupt,        ///< Arrived bit-corrupted; CRC32 rejected, never decoded.
};

/// Control-plane message kinds (mirrors SelfHealingRuntime's protocol).
enum class ControlKind : uint8_t {
  kReport,      ///< Suspicion report, monitor -> base.
  kReportAck,   ///< Base's echo of a landed report.
  kImage,       ///< Full plan image, base -> node.
  kBump,        ///< 5-byte epoch bump, base -> node.
  kInstallAck,  ///< Install acknowledgment, node -> base.
};

/// One structured trace record. The typed kinds cover every event the
/// runtime emits; kText carries free-form lines (schedule descriptions,
/// test-side round summaries). `Render()` produces the exact line the
/// legacy string trace printed — the 20-seed differential tests replay
/// those bytes, so the rendering is a tested determinism contract, not a
/// debug convenience.
struct TraceEvent {
  enum class Kind : uint8_t {
    kText,     ///< Free-form line in `text`.
    kSend,     ///< Data transmission attempt and its outcome.
    kGiveUp,   ///< Retry budget exhausted, message never delivered.
    kSuspect,  ///< A monitor raised a suspicion on a neighbor link.
    kControl,  ///< A control-plane message reached its target.
    kReplan,   ///< The base station opened a new plan epoch.
  };

  Kind kind = Kind::kText;
  /// Tick (kSend/kGiveUp) or round (kSuspect/kControl/kReplan).
  int time = 0;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  int message_id = -1;
  int attempt = 0;
  int payload_bytes = 0;
  SendOutcome outcome = SendOutcome::kRx;
  /// Delivered but the reverse-path ack was lost (sender will retry).
  bool ack_lost = false;
  /// For kDropped: 1-based index of the segment hop that failed.
  int drop_hop = 0;
  ControlKind control = ControlKind::kReport;
  // --- kReplan fields ---
  uint32_t epoch = 0;
  int failed_links = 0;
  int dead_nodes = 0;
  int images = 0;
  int bumps = 0;
  int edges_reused = 0;
  int edges_reoptimized = 0;
  /// kText payload; empty for typed records (keeps them fixed-size).
  std::string text;

  /// Renders the record to its canonical (legacy-identical) line.
  std::string Render() const;
};

/// Structured, optionally bounded event trace — the source of truth behind
/// the runtime's `EventTrace`. Typed records are appended on the hot path
/// without any string formatting; rendering happens only in `ToString`.
///
/// By default the trace is append-only and unbounded (the differential
/// tests replay full traces). `set_capacity(n)` switches it to a ring of
/// the most recent `n` records: memory stays constant over arbitrarily
/// long runs, and `dropped()` reports how many records aged out.
class RoundTrace {
 public:
  RoundTrace() = default;

  /// 0 (default) = unbounded; otherwise keep only the `capacity` most
  /// recent records. Shrinking below the current size drops the oldest.
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }

  void Append(TraceEvent event);

  // Typed emitters — no formatting cost at call time.
  void Text(std::string line);
  void Send(int tick, NodeId from, NodeId to, int message_id, int attempt,
            int payload_bytes, SendOutcome outcome, bool ack_lost,
            int drop_hop = 0);
  void GiveUp(int tick, NodeId from, NodeId to, int message_id);
  void Suspect(int round, NodeId monitor, NodeId neighbor);
  void Control(int round, ControlKind kind, NodeId origin, NodeId target,
               size_t payload_bytes);
  void Replan(int round, uint32_t epoch, int failed_links, int dead_nodes,
              int images, int bumps, int edges_reused,
              int edges_reoptimized);

  /// Records currently retained.
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  /// Records ever appended, including ones the ring dropped.
  uint64_t total_appended() const { return total_appended_; }
  /// Records dropped by the ring (0 in unbounded mode).
  uint64_t dropped() const { return total_appended_ - events_.size(); }
  /// Approximate retained memory: record payloads plus text capacities.
  /// Constant in capped mode once the ring is full of typed records —
  /// the 10k-round regression test asserts exactly that.
  size_t RetainedBytes() const;

  const std::deque<TraceEvent>& events() const { return events_; }

  /// Renders every retained record, one line each, in append order.
  std::string ToString() const;

  void Clear();

 private:
  std::deque<TraceEvent> events_;
  size_t capacity_ = 0;
  uint64_t total_appended_ = 0;
};

}  // namespace m2m::obs

#endif  // M2M_OBS_TRACE_H_
