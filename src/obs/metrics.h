#ifndef M2M_OBS_METRICS_H_
#define M2M_OBS_METRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace m2m::obs {

/// Opaque handle to a registered metric. Registration (name interning)
/// happens once, off the hot path; every subsequent update is an indexed
/// array access through the handle. A default-constructed handle is
/// invalid and every update through it is a checked error.
struct MetricHandle {
  int32_t index = -1;
  bool valid() const { return index >= 0; }
};

/// Zero-dependency metrics registry for the simulation runtime: named
/// counters, gauges and histograms, each optionally broken down by node id
/// and by directed edge (from, to). All state is plain integers —
/// deterministic across replays, so metric snapshots can be differential-
/// tested just like event traces.
///
/// Conventions:
///   - Counters only ever increase; `Add` with a per-node or per-edge
///     label also feeds the unlabeled total, so `Total(name)` is always
///     the sum over labels plus any unlabeled adds.
///   - Gauges are last-write-wins (`Set`).
///   - Histograms observe int64 samples into fixed upper-bound buckets
///     (default: powers of two up to 2^16, plus +inf).
///
/// `ToJson` renders a deterministic snapshot (registration order, node
/// ids ascending, edges sorted) against the `m2m.metrics.v1` schema that
/// the CI smoke job validates.
///
/// Thread safety: the hot-path updates are serialized by an internal
/// mutex, because observational counting can run inside sharded round
/// execution (ChannelModel counts burst transitions from delivery queries
/// the simulator fans out). Counter totals are commutative integer sums,
/// so concurrent updates stay deterministic. Snapshot reads (`ToJson`,
/// `Total`, ...) are unsynchronized and must happen between rounds, which
/// is the only place the runtime and tests read them.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  /// Registers (or re-opens) a counter. Re-registering an existing name
  /// returns the same handle; the kind must match.
  MetricHandle Counter(const std::string& name);
  MetricHandle Gauge(const std::string& name);
  /// `bucket_bounds` are inclusive upper bounds, strictly increasing;
  /// empty means the default power-of-two bounds.
  MetricHandle Histogram(const std::string& name,
                         std::vector<int64_t> bucket_bounds = {});

  // --- Hot-path updates -------------------------------------------------
  /// Unlabeled counter increment.
  void Add(MetricHandle handle, int64_t delta = 1);
  /// Per-node counter increment (also feeds the total).
  void AddNode(MetricHandle handle, NodeId node, int64_t delta = 1);
  /// Per-edge counter increment (also feeds the total).
  void AddEdge(MetricHandle handle, NodeId from, NodeId to,
               int64_t delta = 1);
  /// Gauge write (last-write-wins).
  void Set(MetricHandle handle, int64_t value);
  /// Per-node gauge write.
  void SetNode(MetricHandle handle, NodeId node, int64_t value);
  /// Histogram observation.
  void Observe(MetricHandle handle, int64_t value);

  // --- Snapshot reads (tests, reconciliation, exporters) ----------------
  bool Has(const std::string& name) const;
  /// Counter/gauge total; 0 for unknown names.
  int64_t Total(const std::string& name) const;
  int64_t NodeValue(const std::string& name, NodeId node) const;
  int64_t EdgeValue(const std::string& name, NodeId from, NodeId to) const;
  /// Sum of all per-node values of a metric (label-consistency checks).
  int64_t NodeSum(const std::string& name) const;
  int64_t EdgeSum(const std::string& name) const;
  int64_t HistogramCount(const std::string& name) const;
  int64_t HistogramSum(const std::string& name) const;
  /// Registered names, in registration order.
  std::vector<std::string> Names() const;

  /// Zeroes every value but keeps registrations (handles stay valid).
  void Reset();

  /// Deterministic JSON snapshot (schema `m2m.metrics.v1`).
  std::string ToJson() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    std::string name;
    Kind kind = Kind::kCounter;
    int64_t total = 0;
    /// Per-node values, grown on demand; index = node id.
    std::vector<int64_t> per_node;
    bool any_node = false;
    /// Per-edge values keyed (from << 32) | to.
    std::unordered_map<uint64_t, int64_t> per_edge;
    /// Histogram state: bounds.size() + 1 buckets (last = +inf).
    std::vector<int64_t> bounds;
    std::vector<int64_t> buckets;
    int64_t count = 0;
    int64_t sum = 0;
  };

  static uint64_t EdgeKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  MetricHandle Register(const std::string& name, Kind kind,
                        std::vector<int64_t> bucket_bounds);
  Metric& Resolve(MetricHandle handle, Kind kind);
  const Metric* Find(const std::string& name) const;

  std::vector<Metric> metrics_;
  std::unordered_map<std::string, int32_t> index_;
  /// Guards hot-path updates (see the thread-safety note above).
  std::mutex update_mutex_;
};

}  // namespace m2m::obs

#endif  // M2M_OBS_METRICS_H_
