#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace m2m::obs {

namespace {

std::vector<int64_t> DefaultBounds() {
  std::vector<int64_t> bounds;
  for (int64_t b = 1; b <= (int64_t{1} << 16); b *= 2) bounds.push_back(b);
  return bounds;
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    case 2:
      return "histogram";
  }
  return "?";
}

}  // namespace

MetricHandle MetricsRegistry::Register(const std::string& name, Kind kind,
                                       std::vector<int64_t> bucket_bounds) {
  M2M_CHECK(!name.empty()) << "metric names must be non-empty";
  auto it = index_.find(name);
  if (it != index_.end()) {
    M2M_CHECK(metrics_[it->second].kind == kind)
        << "metric '" << name << "' re-registered as "
        << KindName(static_cast<int>(kind)) << " but is "
        << KindName(static_cast<int>(metrics_[it->second].kind));
    return MetricHandle{it->second};
  }
  Metric metric;
  metric.name = name;
  metric.kind = kind;
  if (kind == Kind::kHistogram) {
    metric.bounds =
        bucket_bounds.empty() ? DefaultBounds() : std::move(bucket_bounds);
    M2M_CHECK(std::is_sorted(metric.bounds.begin(), metric.bounds.end()))
        << "histogram '" << name << "' bounds must be increasing";
    metric.buckets.assign(metric.bounds.size() + 1, 0);
  }
  const int32_t index = static_cast<int32_t>(metrics_.size());
  metrics_.push_back(std::move(metric));
  index_.emplace(name, index);
  return MetricHandle{index};
}

MetricHandle MetricsRegistry::Counter(const std::string& name) {
  return Register(name, Kind::kCounter, {});
}

MetricHandle MetricsRegistry::Gauge(const std::string& name) {
  return Register(name, Kind::kGauge, {});
}

MetricHandle MetricsRegistry::Histogram(const std::string& name,
                                        std::vector<int64_t> bucket_bounds) {
  return Register(name, Kind::kHistogram, std::move(bucket_bounds));
}

MetricsRegistry::Metric& MetricsRegistry::Resolve(MetricHandle handle,
                                                  Kind kind) {
  M2M_CHECK(handle.valid() &&
            handle.index < static_cast<int32_t>(metrics_.size()))
      << "update through an unregistered metric handle";
  Metric& metric = metrics_[handle.index];
  M2M_CHECK(metric.kind == kind)
      << "metric '" << metric.name << "' is "
      << KindName(static_cast<int>(metric.kind)) << ", updated as "
      << KindName(static_cast<int>(kind));
  return metric;
}

void MetricsRegistry::Add(MetricHandle handle, int64_t delta) {
  M2M_CHECK_GE(delta, 0) << "counters only increase";
  std::lock_guard<std::mutex> lock(update_mutex_);
  Resolve(handle, Kind::kCounter).total += delta;
}

void MetricsRegistry::AddNode(MetricHandle handle, NodeId node,
                              int64_t delta) {
  M2M_CHECK_GE(delta, 0) << "counters only increase";
  M2M_CHECK_GE(node, 0);
  std::lock_guard<std::mutex> lock(update_mutex_);
  Metric& metric = Resolve(handle, Kind::kCounter);
  if (static_cast<size_t>(node) >= metric.per_node.size()) {
    metric.per_node.resize(node + 1, 0);
  }
  metric.per_node[node] += delta;
  metric.any_node = true;
  metric.total += delta;
}

void MetricsRegistry::AddEdge(MetricHandle handle, NodeId from, NodeId to,
                              int64_t delta) {
  M2M_CHECK_GE(delta, 0) << "counters only increase";
  std::lock_guard<std::mutex> lock(update_mutex_);
  Metric& metric = Resolve(handle, Kind::kCounter);
  metric.per_edge[EdgeKey(from, to)] += delta;
  metric.total += delta;
}

void MetricsRegistry::Set(MetricHandle handle, int64_t value) {
  std::lock_guard<std::mutex> lock(update_mutex_);
  Resolve(handle, Kind::kGauge).total = value;
}

void MetricsRegistry::SetNode(MetricHandle handle, NodeId node,
                              int64_t value) {
  M2M_CHECK_GE(node, 0);
  std::lock_guard<std::mutex> lock(update_mutex_);
  Metric& metric = Resolve(handle, Kind::kGauge);
  if (static_cast<size_t>(node) >= metric.per_node.size()) {
    metric.per_node.resize(node + 1, 0);
  }
  metric.per_node[node] = value;
  metric.any_node = true;
}

void MetricsRegistry::Observe(MetricHandle handle, int64_t value) {
  std::lock_guard<std::mutex> lock(update_mutex_);
  Metric& metric = Resolve(handle, Kind::kHistogram);
  size_t bucket = 0;
  while (bucket < metric.bounds.size() && value > metric.bounds[bucket]) {
    ++bucket;
  }
  metric.buckets[bucket] += 1;
  metric.count += 1;
  metric.sum += value;
}

const MetricsRegistry::Metric* MetricsRegistry::Find(
    const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &metrics_[it->second];
}

bool MetricsRegistry::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

int64_t MetricsRegistry::Total(const std::string& name) const {
  const Metric* metric = Find(name);
  return metric == nullptr ? 0 : metric->total;
}

int64_t MetricsRegistry::NodeValue(const std::string& name,
                                   NodeId node) const {
  const Metric* metric = Find(name);
  if (metric == nullptr || node < 0 ||
      static_cast<size_t>(node) >= metric->per_node.size()) {
    return 0;
  }
  return metric->per_node[node];
}

int64_t MetricsRegistry::EdgeValue(const std::string& name, NodeId from,
                                   NodeId to) const {
  const Metric* metric = Find(name);
  if (metric == nullptr) return 0;
  auto it = metric->per_edge.find(EdgeKey(from, to));
  return it == metric->per_edge.end() ? 0 : it->second;
}

int64_t MetricsRegistry::NodeSum(const std::string& name) const {
  const Metric* metric = Find(name);
  if (metric == nullptr) return 0;
  int64_t sum = 0;
  for (int64_t value : metric->per_node) sum += value;
  return sum;
}

int64_t MetricsRegistry::EdgeSum(const std::string& name) const {
  const Metric* metric = Find(name);
  if (metric == nullptr) return 0;
  int64_t sum = 0;
  for (const auto& [key, value] : metric->per_edge) sum += value;
  return sum;
}

int64_t MetricsRegistry::HistogramCount(const std::string& name) const {
  const Metric* metric = Find(name);
  return metric == nullptr ? 0 : metric->count;
}

int64_t MetricsRegistry::HistogramSum(const std::string& name) const {
  const Metric* metric = Find(name);
  return metric == nullptr ? 0 : metric->sum;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(metrics_.size());
  for (const Metric& metric : metrics_) names.push_back(metric.name);
  return names;
}

void MetricsRegistry::Reset() {
  for (Metric& metric : metrics_) {
    metric.total = 0;
    metric.per_node.clear();
    metric.any_node = false;
    metric.per_edge.clear();
    std::fill(metric.buckets.begin(), metric.buckets.end(), 0);
    metric.count = 0;
    metric.sum = 0;
  }
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"m2m.metrics.v1\",\n  \"metrics\": [";
  for (size_t m = 0; m < metrics_.size(); ++m) {
    const Metric& metric = metrics_[m];
    out << (m == 0 ? "\n" : ",\n") << "    {\"name\": \"" << metric.name
        << "\", \"kind\": \"" << KindName(static_cast<int>(metric.kind))
        << "\"";
    if (metric.kind == Kind::kHistogram) {
      out << ", \"count\": " << metric.count << ", \"sum\": " << metric.sum
          << ", \"buckets\": [";
      for (size_t b = 0; b < metric.buckets.size(); ++b) {
        if (b > 0) out << ", ";
        out << "{\"le\": ";
        if (b < metric.bounds.size()) {
          out << metric.bounds[b];
        } else {
          out << "\"inf\"";
        }
        out << ", \"count\": " << metric.buckets[b] << "}";
      }
      out << "]";
    } else {
      out << ", \"" << (metric.kind == Kind::kGauge ? "value" : "total")
          << "\": " << metric.total;
      if (metric.any_node) {
        out << ", \"by_node\": [";
        bool first = true;
        for (size_t n = 0; n < metric.per_node.size(); ++n) {
          if (metric.per_node[n] == 0) continue;
          if (!first) out << ", ";
          first = false;
          out << "{\"node\": " << n << ", \"value\": " << metric.per_node[n]
              << "}";
        }
        out << "]";
      }
      if (!metric.per_edge.empty()) {
        std::vector<uint64_t> keys;
        keys.reserve(metric.per_edge.size());
        for (const auto& [key, value] : metric.per_edge) keys.push_back(key);
        std::sort(keys.begin(), keys.end());
        out << ", \"by_edge\": [";
        for (size_t k = 0; k < keys.size(); ++k) {
          if (k > 0) out << ", ";
          out << "{\"from\": " << (keys[k] >> 32)
              << ", \"to\": " << static_cast<uint32_t>(keys[k])
              << ", \"value\": " << metric.per_edge.at(keys[k]) << "}";
        }
        out << "]";
      }
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace m2m::obs
