#include "export/dot.h"

#include <set>
#include <sstream>

#include "common/check.h"

namespace m2m {

namespace {

// Fixed-precision double formatting without locale surprises.
std::string Num(double value, int precision = 2) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace

std::string TopologyToDot(const Topology& topology) {
  std::ostringstream out;
  out << "graph topology {\n  node [shape=circle fontsize=10];\n";
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    const Point& p = topology.position(n);
    out << "  n" << n << " [pos=\"" << Num(p.x) << "," << Num(p.y)
        << "!\"];\n";
  }
  for (NodeId a = 0; a < topology.node_count(); ++a) {
    for (NodeId b : topology.neighbors(a)) {
      if (a < b) out << "  n" << a << " -- n" << b << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string MulticastTreeToDot(const MulticastForest& forest,
                               const Topology& topology, NodeId source) {
  std::ostringstream out;
  out << "digraph tree_" << source << " {\n"
      << "  node [shape=circle fontsize=10];\n"
      << "  n" << source << " [shape=box];\n";
  // Destinations of this source.
  std::set<NodeId> destinations;
  for (const Task& task : forest.tasks()) {
    for (NodeId s : task.sources) {
      if (s == source) destinations.insert(task.destination);
    }
  }
  for (NodeId d : destinations) {
    if (d != source) out << "  n" << d << " [shape=doublecircle];\n";
  }
  std::set<NodeId> placed;
  for (int e : forest.TreeEdges(source)) {
    const ForestEdge& edge = forest.edges()[e];
    for (size_t i = 0; i + 1 < edge.segment.size(); ++i) {
      out << "  n" << edge.segment[i] << " -> n" << edge.segment[i + 1]
          << ";\n";
      placed.insert(edge.segment[i]);
      placed.insert(edge.segment[i + 1]);
    }
  }
  for (NodeId n : placed) {
    const Point& p = topology.position(n);
    out << "  n" << n << " [pos=\"" << Num(p.x) << "," << Num(p.y)
        << "!\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string PlanToDot(const GlobalPlan& plan, const Topology& topology) {
  const MulticastForest& forest = plan.forest();
  std::ostringstream out;
  out << "digraph plan {\n  node [shape=circle fontsize=10];\n";
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    const Point& p = topology.position(n);
    out << "  n" << n << " [pos=\"" << Num(p.x) << "," << Num(p.y)
        << "!\"];\n";
  }
  for (size_t e = 0; e < forest.edges().size(); ++e) {
    const ForestEdge& edge = forest.edges()[e];
    const EdgePlan& edge_plan = plan.plan_for(static_cast<int>(e));
    out << "  n" << edge.edge.tail << " -> n" << edge.edge.head
        << " [label=\"" << edge_plan.raw_sources.size() << "r+"
        << edge_plan.agg_destinations.size() << "a/"
        << edge_plan.payload_bytes << "B\"];\n";
  }
  out << "}\n";
  return out.str();
}

std::string PlanToJson(const GlobalPlan& plan) {
  const MulticastForest& forest = plan.forest();
  std::ostringstream out;
  out << "{\n  \"strategy\": \"" << ToString(plan.options().strategy)
      << "\",\n  \"total_payload_bytes\": " << plan.TotalPayloadBytes()
      << ",\n  \"total_units\": " << plan.TotalUnits() << ",\n  \"edges\": [";
  for (size_t e = 0; e < forest.edges().size(); ++e) {
    const ForestEdge& edge = forest.edges()[e];
    const EdgePlan& edge_plan = plan.plan_for(static_cast<int>(e));
    out << (e == 0 ? "\n" : ",\n") << "    {\"tail\": " << edge.edge.tail
        << ", \"head\": " << edge.edge.head
        << ", \"hops\": " << edge.hop_length() << ", \"raw\": [";
    for (size_t i = 0; i < edge_plan.raw_sources.size(); ++i) {
      out << (i == 0 ? "" : ", ") << edge_plan.raw_sources[i];
    }
    out << "], \"aggregate\": [";
    for (size_t i = 0; i < edge_plan.agg_destinations.size(); ++i) {
      out << (i == 0 ? "" : ", ") << edge_plan.agg_destinations[i];
    }
    out << "], \"payload_bytes\": " << edge_plan.payload_bytes << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string WorkloadToJson(const Workload& workload) {
  M2M_CHECK_EQ(workload.tasks.size(), workload.specs.size());
  std::ostringstream out;
  out << "{\n  \"tasks\": [";
  for (size_t t = 0; t < workload.tasks.size(); ++t) {
    const Task& task = workload.tasks[t];
    const FunctionSpec& spec = workload.specs[t];
    out << (t == 0 ? "\n" : ",\n")
        << "    {\"destination\": " << task.destination << ", \"kind\": \""
        << ToString(spec.kind) << "\", \"sources\": [";
    for (size_t i = 0; i < spec.weights.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "{\"node\": " << spec.weights[i].first
          << ", \"weight\": " << Num(spec.weights[i].second, 4) << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace m2m
