#ifndef M2M_EXPORT_DOT_H_
#define M2M_EXPORT_DOT_H_

#include <string>

#include "plan/planner.h"
#include "routing/multicast.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Graphviz `graph` of the connectivity graph with node positions (render
/// with `neato -n2`).
std::string TopologyToDot(const Topology& topology);

/// Graphviz `digraph` of one source's multicast tree: the source is boxed,
/// its destinations are doubly circled, edges follow the physical segments.
std::string MulticastTreeToDot(const MulticastForest& forest,
                               const Topology& topology, NodeId source);

/// Graphviz `digraph` of a full plan: every forest edge labeled
/// "<raw units>r+<partial units>a / <payload bytes>B".
std::string PlanToDot(const GlobalPlan& plan, const Topology& topology);

/// Machine-readable JSON dump of a plan: edges with raw sources, aggregated
/// destinations, and payload bytes, plus totals.
std::string PlanToJson(const GlobalPlan& plan);

/// JSON dump of a workload: per task, the destination, function kind, and
/// weighted sources.
std::string WorkloadToJson(const Workload& workload);

}  // namespace m2m

#endif  // M2M_EXPORT_DOT_H_
