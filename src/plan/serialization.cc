#include "plan/serialization.h"

#include <map>

#include "common/bytes.h"
#include "common/check.h"

namespace m2m {

std::vector<uint8_t> EncodeNodeState(const NodeState& state,
                                     const FunctionSet& functions) {
  // Global message id -> node-local outgoing index.
  std::map<int, int> local_id;
  for (size_t i = 0; i < state.outgoing_table.size(); ++i) {
    local_id[state.outgoing_table[i].message_id] = static_cast<int>(i);
  }
  auto to_local = [&](int message_id) {
    auto it = local_id.find(message_id);
    M2M_CHECK(it != local_id.end())
        << "table entry references unknown outgoing message " << message_id;
    return it->second;
  };

  ByteWriter writer;
  writer.WriteVarint(state.raw_table.size());
  for (const RawTableEntry& entry : state.raw_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.source));
    writer.WriteVarint(static_cast<uint64_t>(to_local(entry.message_id)));
  }
  writer.WriteVarint(state.preagg_table.size());
  for (const PreAggTableEntry& entry : state.preagg_table) {
    const AggregateFunction& fn = functions.Get(entry.destination);
    writer.WriteVarint(static_cast<uint64_t>(entry.source));
    writer.WriteVarint(static_cast<uint64_t>(entry.destination));
    writer.WriteU8(static_cast<uint8_t>(fn.kind()));
    writer.WriteF32(static_cast<float>(fn.WeightFor(entry.source)));
    writer.WriteF32(static_cast<float>(fn.Parameter()));
  }
  writer.WriteVarint(state.partial_table.size());
  for (const PartialTableEntry& entry : state.partial_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.destination));
    writer.WriteVarint(static_cast<uint64_t>(entry.expected_contributions));
    writer.WriteVarint(entry.message_id < 0
                           ? 0
                           : static_cast<uint64_t>(
                                 to_local(entry.message_id) + 1));
    writer.WriteU8(
        static_cast<uint8_t>(functions.Get(entry.destination).kind()));
  }
  writer.WriteVarint(state.outgoing_table.size());
  for (const OutgoingMessageEntry& entry : state.outgoing_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.unit_count));
    writer.WriteVarint(static_cast<uint64_t>(entry.recipient));
  }
  writer.WriteU8(state.is_destination ? 1 : 0);
  return writer.bytes();
}

DecodedNodeState DecodeNodeState(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  DecodedNodeState decoded;
  uint64_t raw_count = reader.ReadVarint();
  for (uint64_t i = 0; i < raw_count; ++i) {
    RawTableEntry entry;
    entry.source = static_cast<NodeId>(reader.ReadVarint());
    entry.message_id = static_cast<int>(reader.ReadVarint());
    decoded.state.raw_table.push_back(entry);
  }
  uint64_t preagg_count = reader.ReadVarint();
  for (uint64_t i = 0; i < preagg_count; ++i) {
    PreAggTableEntry entry;
    entry.source = static_cast<NodeId>(reader.ReadVarint());
    entry.destination = static_cast<NodeId>(reader.ReadVarint());
    DecodedPreAggMeta meta;
    meta.kind = reader.ReadU8();
    meta.weight = reader.ReadF32();
    meta.param = reader.ReadF32();
    decoded.preagg_meta.push_back(meta);
    decoded.state.preagg_table.push_back(entry);
  }
  uint64_t partial_count = reader.ReadVarint();
  for (uint64_t i = 0; i < partial_count; ++i) {
    PartialTableEntry entry;
    entry.destination = static_cast<NodeId>(reader.ReadVarint());
    entry.expected_contributions = static_cast<int>(reader.ReadVarint());
    uint64_t local_plus1 = reader.ReadVarint();
    entry.message_id = local_plus1 == 0
                           ? -1
                           : static_cast<int>(local_plus1 - 1);
    decoded.partial_kinds.push_back(reader.ReadU8());
    decoded.state.partial_table.push_back(entry);
  }
  uint64_t outgoing_count = reader.ReadVarint();
  for (uint64_t i = 0; i < outgoing_count; ++i) {
    OutgoingMessageEntry entry;
    entry.message_id = static_cast<int>(i);
    entry.unit_count = static_cast<int>(reader.ReadVarint());
    entry.recipient = static_cast<NodeId>(reader.ReadVarint());
    decoded.state.outgoing_table.push_back(entry);
  }
  decoded.state.is_destination = reader.ReadU8() != 0;
  M2M_CHECK(reader.AtEnd()) << "trailing bytes in node state image";
  return decoded;
}

std::vector<std::vector<uint8_t>> EncodeAllNodeStates(
    const CompiledPlan& compiled, const FunctionSet& functions) {
  std::vector<std::vector<uint8_t>> images;
  images.reserve(compiled.node_count());
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    images.push_back(EncodeNodeState(compiled.state(n), functions));
  }
  return images;
}

}  // namespace m2m
