#include "plan/serialization.h"

#include <algorithm>
#include <map>

#include "common/bytes.h"
#include "common/check.h"
#include "common/crc32.h"

namespace m2m {

std::vector<uint8_t> EncodeNodeState(const NodeState& state,
                                     const FunctionSet& functions,
                                     uint32_t plan_epoch) {
  // Global message id -> node-local outgoing index.
  std::map<int, int> local_id;
  for (size_t i = 0; i < state.outgoing_table.size(); ++i) {
    local_id[state.outgoing_table[i].message_id] = static_cast<int>(i);
  }
  auto to_local = [&](int message_id) {
    auto it = local_id.find(message_id);
    M2M_CHECK(it != local_id.end())
        << "table entry references unknown outgoing message " << message_id;
    return it->second;
  };

  ByteWriter writer;
  writer.WriteVarint(plan_epoch);
  writer.WriteVarint(state.raw_table.size());
  for (const RawTableEntry& entry : state.raw_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.source));
    writer.WriteVarint(static_cast<uint64_t>(to_local(entry.message_id)));
  }
  writer.WriteVarint(state.preagg_table.size());
  for (const PreAggTableEntry& entry : state.preagg_table) {
    const AggregateFunction& fn = functions.Get(entry.destination);
    writer.WriteVarint(static_cast<uint64_t>(entry.source));
    writer.WriteVarint(static_cast<uint64_t>(entry.destination));
    writer.WriteU8(static_cast<uint8_t>(fn.kind()));
    writer.WriteF32(static_cast<float>(fn.WeightFor(entry.source)));
    writer.WriteF32(static_cast<float>(fn.Parameter()));
  }
  writer.WriteVarint(state.partial_table.size());
  for (const PartialTableEntry& entry : state.partial_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.destination));
    writer.WriteVarint(static_cast<uint64_t>(entry.expected_contributions));
    writer.WriteVarint(entry.message_id < 0
                           ? 0
                           : static_cast<uint64_t>(
                                 to_local(entry.message_id) + 1));
    writer.WriteU8(
        static_cast<uint8_t>(functions.Get(entry.destination).kind()));
  }
  writer.WriteVarint(state.outgoing_table.size());
  for (const OutgoingMessageEntry& entry : state.outgoing_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.unit_count));
    writer.WriteVarint(static_cast<uint64_t>(entry.recipient));
  }
  writer.WriteU8(state.is_destination ? 1 : 0);
  return writer.bytes();
}

DecodedNodeState DecodeNodeState(const std::vector<uint8_t>& bytes) {
  std::optional<DecodedNodeState> decoded = TryDecodeNodeState(bytes);
  M2M_CHECK(decoded.has_value()) << "malformed node state image";
  return *std::move(decoded);
}

namespace {

/// Error-flagged reader: instead of CHECK-failing like ByteReader, a read
/// past the end latches `ok = false` and returns zeros, letting decode
/// loops bail out without crashing on hostile input.
class SafeByteReader {
 public:
  explicit SafeByteReader(const std::vector<uint8_t>& bytes)
      : bytes_(bytes) {}

  bool ok = true;

  uint8_t ReadU8() {
    if (cursor_ >= bytes_.size()) {
      ok = false;
      return 0;
    }
    return bytes_[cursor_++];
  }

  uint64_t ReadVarint() {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte = ReadU8();
      if (!ok) return 0;
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
    }
    ok = false;  // Varint longer than 64 bits.
    return 0;
  }

  float ReadF32() {
    uint32_t raw = 0;
    for (int i = 0; i < 4; ++i) {
      raw |= static_cast<uint32_t>(ReadU8()) << (8 * i);
    }
    float value = 0.0f;
    static_assert(sizeof(value) == sizeof(raw));
    __builtin_memcpy(&value, &raw, sizeof(value));
    return value;
  }

  /// Varint that must fit a non-negative int32 (node ids, counts).
  int32_t ReadSmall() {
    uint64_t value = ReadVarint();
    if (value > 0x7fffffff) ok = false;
    return ok ? static_cast<int32_t>(value) : 0;
  }

  bool AtEnd() const { return cursor_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - cursor_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t cursor_ = 0;
};

}  // namespace

std::optional<DecodedNodeState> TryDecodeNodeState(
    const std::vector<uint8_t>& bytes) {
  SafeByteReader reader(bytes);
  DecodedNodeState decoded;
  uint64_t epoch = reader.ReadVarint();
  if (!reader.ok || epoch > 0xffffffffull) return std::nullopt;
  decoded.plan_epoch = static_cast<uint32_t>(epoch);
  // Each `*_count` is validated against the bytes actually left, scaled by
  // that table's minimum encoded entry size (raw 2, preagg 11, partial 4,
  // outgoing 2 bytes). An oversized count from a hostile image is rejected
  // before it drives the reserve or the loop, so a 5-byte image claiming
  // 2^30 entries costs O(1), not O(count).
  // (Division form: `count * size` could wrap uint64 for a hostile count.)
  uint64_t raw_count = reader.ReadVarint();
  if (!reader.ok || raw_count > reader.remaining() / 2) return std::nullopt;
  decoded.state.raw_table.reserve(raw_count);
  for (uint64_t i = 0; i < raw_count && reader.ok; ++i) {
    RawTableEntry entry;
    entry.source = reader.ReadSmall();
    entry.message_id = reader.ReadSmall();
    decoded.state.raw_table.push_back(entry);
  }
  uint64_t preagg_count = reader.ReadVarint();
  if (!reader.ok || preagg_count > reader.remaining() / 11) {
    return std::nullopt;
  }
  decoded.preagg_meta.reserve(preagg_count);
  decoded.state.preagg_table.reserve(preagg_count);
  for (uint64_t i = 0; i < preagg_count && reader.ok; ++i) {
    PreAggTableEntry entry;
    entry.source = reader.ReadSmall();
    entry.destination = reader.ReadSmall();
    DecodedPreAggMeta meta;
    meta.kind = reader.ReadU8();
    meta.weight = reader.ReadF32();
    meta.param = reader.ReadF32();
    decoded.preagg_meta.push_back(meta);
    decoded.state.preagg_table.push_back(entry);
  }
  uint64_t partial_count = reader.ReadVarint();
  if (!reader.ok || partial_count > reader.remaining() / 4) {
    return std::nullopt;
  }
  decoded.partial_kinds.reserve(partial_count);
  decoded.state.partial_table.reserve(partial_count);
  for (uint64_t i = 0; i < partial_count && reader.ok; ++i) {
    PartialTableEntry entry;
    entry.destination = reader.ReadSmall();
    entry.expected_contributions = reader.ReadSmall();
    int32_t local_plus1 = reader.ReadSmall();
    entry.message_id = local_plus1 - 1;
    decoded.partial_kinds.push_back(reader.ReadU8());
    decoded.state.partial_table.push_back(entry);
  }
  // The trailing is_destination byte follows the outgoing table, so each
  // 2-byte-minimum entry must fit in remaining() - 1.
  uint64_t outgoing_count = reader.ReadVarint();
  if (!reader.ok || reader.remaining() < 1 ||
      outgoing_count > (reader.remaining() - 1) / 2) {
    return std::nullopt;
  }
  decoded.state.outgoing_table.reserve(outgoing_count);
  for (uint64_t i = 0; i < outgoing_count && reader.ok; ++i) {
    OutgoingMessageEntry entry;
    entry.message_id = static_cast<int>(i);
    entry.unit_count = reader.ReadSmall();
    entry.recipient = reader.ReadSmall();
    decoded.state.outgoing_table.push_back(entry);
  }
  decoded.state.is_destination = reader.ReadU8() != 0;
  if (!reader.ok || !reader.AtEnd()) return std::nullopt;

  // Cross-table validation: message references must land in the outgoing
  // table, or the runtime would index out of bounds.
  const int outgoing = static_cast<int>(decoded.state.outgoing_table.size());
  for (const RawTableEntry& entry : decoded.state.raw_table) {
    if (entry.message_id < 0 || entry.message_id >= outgoing) {
      return std::nullopt;
    }
  }
  for (const PartialTableEntry& entry : decoded.state.partial_table) {
    if (entry.message_id < -1 || entry.message_id >= outgoing) {
      return std::nullopt;
    }
    if (entry.expected_contributions < 1) return std::nullopt;
  }
  return decoded;
}

std::vector<uint8_t> EncodeDecodedNodeState(const DecodedNodeState& decoded) {
  M2M_CHECK_EQ(decoded.preagg_meta.size(), decoded.state.preagg_table.size());
  M2M_CHECK_EQ(decoded.partial_kinds.size(),
               decoded.state.partial_table.size());
  ByteWriter writer;
  writer.WriteVarint(decoded.plan_epoch);
  writer.WriteVarint(decoded.state.raw_table.size());
  for (const RawTableEntry& entry : decoded.state.raw_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.source));
    writer.WriteVarint(static_cast<uint64_t>(entry.message_id));
  }
  writer.WriteVarint(decoded.state.preagg_table.size());
  for (size_t i = 0; i < decoded.state.preagg_table.size(); ++i) {
    const PreAggTableEntry& entry = decoded.state.preagg_table[i];
    const DecodedPreAggMeta& meta = decoded.preagg_meta[i];
    writer.WriteVarint(static_cast<uint64_t>(entry.source));
    writer.WriteVarint(static_cast<uint64_t>(entry.destination));
    writer.WriteU8(meta.kind);
    writer.WriteF32(meta.weight);
    writer.WriteF32(meta.param);
  }
  writer.WriteVarint(decoded.state.partial_table.size());
  for (size_t i = 0; i < decoded.state.partial_table.size(); ++i) {
    const PartialTableEntry& entry = decoded.state.partial_table[i];
    writer.WriteVarint(static_cast<uint64_t>(entry.destination));
    writer.WriteVarint(static_cast<uint64_t>(entry.expected_contributions));
    writer.WriteVarint(static_cast<uint64_t>(entry.message_id + 1));
    writer.WriteU8(decoded.partial_kinds[i]);
  }
  writer.WriteVarint(decoded.state.outgoing_table.size());
  for (const OutgoingMessageEntry& entry : decoded.state.outgoing_table) {
    writer.WriteVarint(static_cast<uint64_t>(entry.unit_count));
    writer.WriteVarint(static_cast<uint64_t>(entry.recipient));
  }
  writer.WriteU8(decoded.state.is_destination ? 1 : 0);
  return writer.bytes();
}

std::vector<std::vector<uint8_t>> EncodeAllNodeStates(
    const CompiledPlan& compiled, const FunctionSet& functions) {
  std::vector<std::vector<uint8_t>> images;
  images.reserve(compiled.node_count());
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    images.push_back(
        EncodeNodeState(compiled.state(n), functions, compiled.plan_epoch()));
  }
  return images;
}

bool ImageContentsEqual(const std::vector<uint8_t>& a,
                        const std::vector<uint8_t>& b) {
  // Skip the leading epoch varint of each image.
  auto body_start = [](const std::vector<uint8_t>& image) {
    size_t i = 0;
    while (i < image.size() && (image[i] & 0x80) != 0) ++i;
    return std::min(i + 1, image.size());  // Past the varint's last byte.
  };
  size_t sa = body_start(a);
  size_t sb = body_start(b);
  if (a.size() - sa != b.size() - sb) return false;
  return std::equal(a.begin() + static_cast<ptrdiff_t>(sa), a.end(),
                    b.begin() + static_cast<ptrdiff_t>(sb));
}

std::vector<uint8_t> FrameNodeImage(const std::vector<uint8_t>& image) {
  return Crc32Frame(image);
}

std::optional<DecodedNodeState> TryDecodeFramedNodeState(
    const std::vector<uint8_t>& frame) {
  std::optional<std::vector<uint8_t>> image = TryOpenCrc32Frame(frame);
  if (!image.has_value()) return std::nullopt;
  return TryDecodeNodeState(*image);
}

}  // namespace m2m
