#include "plan/node_tables.h"

#include <map>
#include <set>

#include "common/check.h"

namespace m2m {

namespace {

// A contribution to a destination's partial record at a node: either the
// result of pre-aggregating one raw value locally (kind 0, id = source), or
// a partial record arriving on one incoming edge (kind 1, id = edge index).
using Contribution = std::pair<int, int>;

}  // namespace

CompiledPlan CompiledPlan::Compile(const GlobalPlan& plan,
                                   const FunctionSet& functions,
                                   MergePolicy policy, uint32_t plan_epoch) {
  const MulticastForest& forest = plan.forest();
  MessageSchedule schedule = MessageSchedule::Build(plan, functions, policy);
  std::vector<NodeState> states(forest.node_count());

  // Deduplicating builders. A raw value fanning out to several of a node's
  // outgoing messages needs one <s, g> entry per message.
  std::set<std::tuple<NodeId, NodeId, int>> raw_entries;  // (node, s, msg)
  std::set<std::pair<NodeId, NodeId>> preagg_entries;  // (node, source->d)
  std::map<std::pair<NodeId, NodeId>, std::set<Contribution>> contributions;

  auto unit_message = [&](int edge_index, bool is_partial, NodeId subject) {
    for (int u : schedule.units_on_edge(edge_index)) {
      const MessageUnit& unit = schedule.units()[u];
      if (unit.is_partial == is_partial && unit.subject == subject) {
        return schedule.message_of_unit(u);
      }
    }
    M2M_CHECK(false) << "no unit for subject " << subject << " on edge "
                     << edge_index;
  };

  for (const Task& task : forest.tasks()) {
    const NodeId d = task.destination;
    for (NodeId s : task.sources) {
      if (s == d) {
        // The destination pre-aggregates its own reading.
        preagg_entries.insert({d, s});
        contributions[{d, d}].insert({0, s});
        continue;
      }
      const std::vector<int>& route = forest.Route(SourceDestPair{s, d});
      bool carried_raw = true;  // The value is raw at the source itself.
      for (size_t i = 0; i < route.size(); ++i) {
        const int e = route[i];
        const NodeId n = forest.edges()[e].edge.tail;
        const EdgePlan& edge_plan = plan.plan_for(e);
        if (edge_plan.TransmitsRaw(s)) {
          M2M_CHECK(carried_raw)
              << "inconsistent plan: raw after aggregation";
          raw_entries.insert({n, s, unit_message(e, false, s)});
          // Value continues raw to the next node.
        } else {
          M2M_CHECK(edge_plan.TransmitsAggregate(d));
          if (carried_raw) {
            preagg_entries.insert({n, s});
            contributions[{n, d}].insert({0, s});
          } else {
            contributions[{n, d}].insert({1, route[i - 1]});
          }
          carried_raw = false;
        }
      }
      // Arrival at the destination.
      if (carried_raw) {
        preagg_entries.insert({d, s});
        contributions[{d, d}].insert({0, s});
      } else {
        contributions[{d, d}].insert({1, route.back()});
      }
    }
    states[d].is_destination = true;
  }

  // Count every table's final size, then reserve before filling: each
  // node's tables are allocated once, contiguously, instead of growing
  // through push_back doublings (visible at 100k-node compiles).
  std::vector<int> raw_count(states.size(), 0);
  std::vector<int> preagg_count(states.size(), 0);
  std::vector<int> partial_count(states.size(), 0);
  std::vector<int> outgoing_count(states.size(), 0);
  for (const auto& [node, source, message_id] : raw_entries) {
    ++raw_count[node];
  }
  for (const auto& [node_dest, contribution_set] : contributions) {
    for (const Contribution& c : contribution_set) {
      if (c.first == 0) ++preagg_count[node_dest.first];
    }
  }
  for (size_t e = 0; e < forest.edges().size(); ++e) {
    partial_count[forest.edges()[e].edge.tail] += static_cast<int>(
        plan.plan_for(static_cast<int>(e)).agg_destinations.size());
  }
  for (const Task& task : forest.tasks()) ++partial_count[task.destination];
  for (const MessageSchedule::Message& message : schedule.messages()) {
    ++outgoing_count[forest.edges()[message.edge_index].edge.tail];
  }
  for (size_t n = 0; n < states.size(); ++n) {
    states[n].raw_table.reserve(raw_count[n]);
    states[n].preagg_table.reserve(preagg_count[n]);
    states[n].partial_table.reserve(partial_count[n]);
    states[n].outgoing_table.reserve(outgoing_count[n]);
  }

  // Raw table.
  for (const auto& [node, source, message_id] : raw_entries) {
    states[node].raw_table.push_back(RawTableEntry{source, message_id});
  }
  // Pre-aggregation table: entries are (node, source) -> destination; we
  // kept (node, source) only for dedup, so rebuild with destinations.
  // (A node pre-aggregates s for exactly the destinations whose contribution
  // set at that node includes {0, s}.)
  for (const auto& [node_dest, contribution_set] : contributions) {
    const auto& [node, destination] = node_dest;
    for (const Contribution& c : contribution_set) {
      if (c.first == 0) {
        states[node].preagg_table.push_back(
            PreAggTableEntry{static_cast<NodeId>(c.second), destination});
      }
    }
  }
  // Partial aggregate table: one entry per edge-level partial unit plus one
  // per destination-local record.
  for (size_t e = 0; e < forest.edges().size(); ++e) {
    const NodeId n = forest.edges()[e].edge.tail;
    for (NodeId d : plan.plan_for(static_cast<int>(e)).agg_destinations) {
      auto it = contributions.find({n, d});
      M2M_CHECK(it != contributions.end())
          << "partial for " << d << " at node " << n
          << " has no contributions";
      states[n].partial_table.push_back(PartialTableEntry{
          d, static_cast<int>(it->second.size()),
          unit_message(static_cast<int>(e), true, d)});
    }
  }
  for (const Task& task : forest.tasks()) {
    const NodeId d = task.destination;
    auto it = contributions.find({d, d});
    M2M_CHECK(it != contributions.end())
        << "destination " << d << " receives no contributions";
    states[d].partial_table.push_back(
        PartialTableEntry{d, static_cast<int>(it->second.size()), -1});
  }
  // Outgoing message table.
  for (size_t m = 0; m < schedule.messages().size(); ++m) {
    const MessageSchedule::Message& message = schedule.messages()[m];
    const ForestEdge& edge = forest.edges()[message.edge_index];
    states[edge.edge.tail].outgoing_table.push_back(OutgoingMessageEntry{
        static_cast<int>(m), static_cast<int>(message.unit_ids.size()),
        edge.edge.head, edge.segment});
  }

  return CompiledPlan(std::make_shared<GlobalPlan>(plan),
                      std::move(schedule), std::move(states), plan_epoch);
}

const NodeState& CompiledPlan::state(NodeId node) const {
  M2M_CHECK(node >= 0 && node < node_count());
  return states_[node];
}

StateTotals CompiledPlan::ComputeStateTotals() const {
  StateTotals totals;
  for (const NodeState& state : states_) {
    totals.raw_entries += static_cast<int64_t>(state.raw_table.size());
    totals.preagg_entries +=
        static_cast<int64_t>(state.preagg_table.size());
    totals.partial_entries +=
        static_cast<int64_t>(state.partial_table.size());
    totals.outgoing_entries +=
        static_cast<int64_t>(state.outgoing_table.size());
    if (state.is_destination) ++totals.evaluator_entries;
  }
  const MulticastForest& forest = plan_->forest();
  for (NodeId s : forest.source_ids()) {
    totals.sum_multicast_tree_sizes += forest.MulticastTreeSize(s);
  }
  for (NodeId d : forest.destination_ids()) {
    totals.sum_aggregation_tree_sizes += forest.AggregationTreeSize(d);
  }
  return totals;
}

}  // namespace m2m
