#include "plan/consistency.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "agg/partial_record.h"
#include "common/relation.h"
#include "plan/serialization.h"

namespace m2m {

std::vector<std::string> FindConsistencyViolations(const GlobalPlan& plan) {
  std::vector<std::string> violations;
  const MulticastForest& forest = plan.forest();
  for (const Task& task : forest.tasks()) {
    for (NodeId s : task.sources) {
      if (s == task.destination) continue;
      const std::vector<int>& route =
          forest.Route(SourceDestPair{s, task.destination});
      bool raw_available = true;
      for (int edge_index : route) {
        const EdgePlan& edge_plan = plan.plan_for(edge_index);
        bool sends_raw = edge_plan.TransmitsRaw(s);
        bool sends_agg = edge_plan.TransmitsAggregate(task.destination);
        const ForestEdge& edge = forest.edges()[edge_index];
        if (!sends_raw && !sends_agg) {
          std::ostringstream msg;
          msg << "edge " << edge.edge.tail << "->" << edge.edge.head
              << " covers neither raw " << s << " nor aggregate "
              << task.destination;
          violations.push_back(msg.str());
        }
        if (sends_raw && !raw_available) {
          std::ostringstream msg;
          msg << "edge " << edge.edge.tail << "->" << edge.edge.head
              << " transmits source " << s
              << " raw after an upstream edge already aggregated it"
              << " (destination " << task.destination << ")";
          violations.push_back(msg.str());
        }
        raw_available = raw_available && sends_raw;
      }
    }
  }
  return violations;
}

bool ValidatePlanConsistency(const GlobalPlan& plan) {
  return FindConsistencyViolations(plan).empty();
}

namespace {

std::string EdgeLabel(const ForestEdge& edge) {
  std::ostringstream os;
  os << edge.edge.tail << "->" << edge.edge.head;
  return os.str();
}

std::string NodeList(const std::vector<NodeId>& nodes) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) os << ",";
    os << nodes[i];
  }
  os << "}";
  return os.str();
}

}  // namespace

std::vector<std::string> FindPlanDivergence(const GlobalPlan& patched,
                                            const GlobalPlan& fresh) {
  std::vector<std::string> differences;
  const auto& fresh_edges = fresh.forest().edges();
  for (size_t e = 0; e < fresh_edges.size(); ++e) {
    int patched_index = patched.forest().EdgeIndexOf(fresh_edges[e].edge);
    if (patched_index < 0) {
      differences.push_back("patched plan is missing edge " +
                            EdgeLabel(fresh_edges[e]));
      continue;
    }
    const EdgePlan& p = patched.plan_for(patched_index);
    const EdgePlan& f = fresh.plan_for(static_cast<int>(e));
    if (p.raw_sources != f.raw_sources) {
      differences.push_back("edge " + EdgeLabel(fresh_edges[e]) +
                            " raw sources differ: patched " +
                            NodeList(p.raw_sources) + " vs fresh " +
                            NodeList(f.raw_sources));
    }
    if (p.agg_destinations != f.agg_destinations) {
      differences.push_back("edge " + EdgeLabel(fresh_edges[e]) +
                            " aggregated destinations differ: patched " +
                            NodeList(p.agg_destinations) + " vs fresh " +
                            NodeList(f.agg_destinations));
    }
  }
  for (const ForestEdge& edge : patched.forest().edges()) {
    if (fresh.forest().EdgeIndexOf(edge.edge) < 0) {
      differences.push_back("patched plan has extra edge " + EdgeLabel(edge));
    }
  }
  return differences;
}

bool PlansEquivalent(const GlobalPlan& a, const GlobalPlan& b) {
  return FindPlanDivergence(a, b).empty();
}

std::vector<DirectedEdge> DivergentEdgeKeys(const GlobalPlan& a,
                                            const GlobalPlan& b) {
  std::set<DirectedEdge> keys;
  const auto& b_edges = b.forest().edges();
  for (size_t e = 0; e < b_edges.size(); ++e) {
    int a_index = a.forest().EdgeIndexOf(b_edges[e].edge);
    if (a_index < 0) {
      keys.insert(b_edges[e].edge);
      continue;
    }
    const EdgePlan& pa = a.plan_for(a_index);
    const EdgePlan& pb = b.plan_for(static_cast<int>(e));
    if (pa.raw_sources != pb.raw_sources ||
        pa.agg_destinations != pb.agg_destinations) {
      keys.insert(b_edges[e].edge);
    }
  }
  for (const ForestEdge& edge : a.forest().edges()) {
    if (b.forest().EdgeIndexOf(edge.edge) < 0) keys.insert(edge.edge);
  }
  return {keys.begin(), keys.end()};
}

namespace {

/// The route of `pair` as milestone-level edge keys, in path order.
std::vector<DirectedEdge> RouteKeys(const GlobalPlan& plan,
                                    SourceDestPair pair) {
  std::vector<DirectedEdge> keys;
  for (int edge_index : plan.forest().Route(pair)) {
    keys.push_back(plan.forest().edges()[edge_index].edge);
  }
  return keys;
}

int PartialUnitBytesOf(const FunctionSet& functions, NodeId destination) {
  return kIdTagBytes + functions.Get(destination).partial_record_bytes();
}

}  // namespace

std::vector<DirectedEdge> PredictedPerturbedEdges(
    const GlobalPlan& old_plan, const FunctionSet& old_functions,
    const GlobalPlan& new_plan, const FunctionSet& new_functions) {
  std::set<SourceDestPair> old_pairs, new_pairs;
  for (const SourceDestPair& p :
       TasksToPairs(old_plan.forest().tasks())) {
    old_pairs.insert(p);
  }
  for (const SourceDestPair& p :
       TasksToPairs(new_plan.forest().tasks())) {
    new_pairs.insert(p);
  }

  // A pair perturbs its edge neighborhoods when it is inserted, deleted,
  // routed differently, or its destination's partial unit size changed
  // (the only per-pair inputs of BuildEdgeInstance).
  std::set<SourceDestPair> perturbed;
  for (const SourceDestPair& p : old_pairs) {
    if (!new_pairs.contains(p)) {
      perturbed.insert(p);
    } else if (RouteKeys(old_plan, p) != RouteKeys(new_plan, p) ||
               PartialUnitBytesOf(old_functions, p.destination) !=
                   PartialUnitBytesOf(new_functions, p.destination)) {
      perturbed.insert(p);
    }
  }
  for (const SourceDestPair& p : new_pairs) {
    if (!old_pairs.contains(p)) perturbed.insert(p);
  }

  std::set<DirectedEdge> predicted;
  for (const SourceDestPair& p : perturbed) {
    if (old_pairs.contains(p)) {
      for (const DirectedEdge& key : RouteKeys(old_plan, p)) {
        predicted.insert(key);
      }
    }
    if (new_pairs.contains(p)) {
      for (const DirectedEdge& key : RouteKeys(new_plan, p)) {
        predicted.insert(key);
      }
    }
  }
  for (const ForestEdge& edge : old_plan.forest().edges()) {
    if (new_plan.forest().EdgeIndexOf(edge.edge) < 0) {
      predicted.insert(edge.edge);
    }
  }
  for (const ForestEdge& edge : new_plan.forest().edges()) {
    if (old_plan.forest().EdgeIndexOf(edge.edge) < 0) {
      predicted.insert(edge.edge);
    }
  }
  return {predicted.begin(), predicted.end()};
}

std::vector<std::string> FindEpochTransitionHazards(
    const CompiledPlan& old_compiled, const FunctionSet& old_functions,
    const CompiledPlan& new_compiled, const FunctionSet& new_functions) {
  std::vector<std::string> hazards;
  if (old_compiled.plan_epoch() != new_compiled.plan_epoch()) {
    return hazards;  // Distinct epochs: the runtime gate separates them.
  }
  std::vector<std::vector<uint8_t>> old_images =
      EncodeAllNodeStates(old_compiled, old_functions);
  std::vector<std::vector<uint8_t>> new_images =
      EncodeAllNodeStates(new_compiled, new_functions);
  const size_t nodes = std::min(old_images.size(), new_images.size());
  if (old_images.size() != new_images.size()) {
    std::ostringstream line;
    line << "node counts differ under one epoch: " << old_images.size()
         << " vs " << new_images.size();
    hazards.push_back(line.str());
  }
  for (size_t n = 0; n < nodes; ++n) {
    if (ImageContentsEqual(old_images[n], new_images[n])) continue;
    std::ostringstream line;
    line << "node " << n << ": tables changed but plan epoch stayed "
         << new_compiled.plan_epoch()
         << " (mixed rounds could merge records across plans)";
    hazards.push_back(line.str());
  }
  return hazards;
}

}  // namespace m2m
