#include "plan/consistency.h"

#include <sstream>

namespace m2m {

std::vector<std::string> FindConsistencyViolations(const GlobalPlan& plan) {
  std::vector<std::string> violations;
  const MulticastForest& forest = plan.forest();
  for (const Task& task : forest.tasks()) {
    for (NodeId s : task.sources) {
      if (s == task.destination) continue;
      const std::vector<int>& route =
          forest.Route(SourceDestPair{s, task.destination});
      bool raw_available = true;
      for (int edge_index : route) {
        const EdgePlan& edge_plan = plan.plan_for(edge_index);
        bool sends_raw = edge_plan.TransmitsRaw(s);
        bool sends_agg = edge_plan.TransmitsAggregate(task.destination);
        const ForestEdge& edge = forest.edges()[edge_index];
        if (!sends_raw && !sends_agg) {
          std::ostringstream msg;
          msg << "edge " << edge.edge.tail << "->" << edge.edge.head
              << " covers neither raw " << s << " nor aggregate "
              << task.destination;
          violations.push_back(msg.str());
        }
        if (sends_raw && !raw_available) {
          std::ostringstream msg;
          msg << "edge " << edge.edge.tail << "->" << edge.edge.head
              << " transmits source " << s
              << " raw after an upstream edge already aggregated it"
              << " (destination " << task.destination << ")";
          violations.push_back(msg.str());
        }
        raw_available = raw_available && sends_raw;
      }
    }
  }
  return violations;
}

bool ValidatePlanConsistency(const GlobalPlan& plan) {
  return FindConsistencyViolations(plan).empty();
}

}  // namespace m2m
