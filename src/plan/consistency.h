#ifndef M2M_PLAN_CONSISTENCY_H_
#define M2M_PLAN_CONSISTENCY_H_

#include <string>
#include <vector>

#include "plan/node_tables.h"
#include "plan/planner.h"

namespace m2m {

/// Checks the Theorem 1 guarantee on an assembled plan: along every route
/// (s, d), (a) every edge serves the pair (raw s or partial d — i.e. each
/// per-edge solution is a vertex cover), and (b) once an edge stops
/// transmitting s raw, no downstream edge of the route transmits s raw
/// again (a value cannot be recovered after aggregation). Returns
/// human-readable descriptions of all violations (empty = consistent).
std::vector<std::string> FindConsistencyViolations(const GlobalPlan& plan);

/// True iff FindConsistencyViolations is empty.
bool ValidatePlanConsistency(const GlobalPlan& plan);

/// Compares two plans edge by edge, keyed on the milestone-level directed
/// edge: both must cover the same edge set, and matching edges must carry
/// identical raw-source / aggregated-destination choices. Returns
/// human-readable differences (empty = the plans are the same). This is the
/// Corollary 1 check: a local re-plan (UpdatePlan / ReplanForTopology)
/// after a topology change must equal a from-scratch global re-plan.
std::vector<std::string> FindPlanDivergence(const GlobalPlan& patched,
                                            const GlobalPlan& fresh);

/// True iff FindPlanDivergence is empty.
bool PlansEquivalent(const GlobalPlan& a, const GlobalPlan& b);

/// The milestone-level edge keys on which two plans actually differ:
/// edges present in only one forest, plus shared edges whose raw-source /
/// aggregated-destination choices diverge. Sorted ascending, deduplicated.
/// This is the structured form of FindPlanDivergence, for callers that
/// bound the difference set rather than render it.
std::vector<DirectedEdge> DivergentEdgeKeys(const GlobalPlan& a,
                                            const GlobalPlan& b);

/// Corollary 1's predicted perturbation set for the transition old -> new
/// (topology or workload form): an edge instance can change only if (a) the
/// edge exists in just one forest, or (b) it serves a *perturbed* pair — a
/// (source, destination) pair that was inserted, deleted, re-routed, or
/// whose destination's partial-record unit size changed. Returns the edge
/// keys, in either forest, satisfying (a) or serving a pair in (b); sorted
/// ascending, deduplicated. Any sound incremental planner's change set
/// (DivergentEdgeKeys against the old plan) is a subset of this — the
/// locality bound the self-healing and query-lifecycle validators enforce.
std::vector<DirectedEdge> PredictedPerturbedEdges(
    const GlobalPlan& old_plan, const FunctionSet& old_functions,
    const GlobalPlan& new_plan, const FunctionSet& new_functions);

/// Safe-transition precondition for the self-healing epoch protocol: if two
/// plan generations differ in any node's installed tables, they must carry
/// distinct plan epochs — otherwise the runtime's epoch gate cannot tell
/// their packets apart and a mixed-generation round could silently merge
/// partial records produced under different plans. Returns human-readable
/// violations: one entry per content-changed node whenever the two compiled
/// plans share an epoch (empty = the transition is safe to disseminate).
std::vector<std::string> FindEpochTransitionHazards(
    const CompiledPlan& old_compiled, const FunctionSet& old_functions,
    const CompiledPlan& new_compiled, const FunctionSet& new_functions);

}  // namespace m2m

#endif  // M2M_PLAN_CONSISTENCY_H_
