#ifndef M2M_PLAN_CONSISTENCY_H_
#define M2M_PLAN_CONSISTENCY_H_

#include <string>
#include <vector>

#include "plan/node_tables.h"
#include "plan/planner.h"

namespace m2m {

/// Checks the Theorem 1 guarantee on an assembled plan: along every route
/// (s, d), (a) every edge serves the pair (raw s or partial d — i.e. each
/// per-edge solution is a vertex cover), and (b) once an edge stops
/// transmitting s raw, no downstream edge of the route transmits s raw
/// again (a value cannot be recovered after aggregation). Returns
/// human-readable descriptions of all violations (empty = consistent).
std::vector<std::string> FindConsistencyViolations(const GlobalPlan& plan);

/// True iff FindConsistencyViolations is empty.
bool ValidatePlanConsistency(const GlobalPlan& plan);

/// Compares two plans edge by edge, keyed on the milestone-level directed
/// edge: both must cover the same edge set, and matching edges must carry
/// identical raw-source / aggregated-destination choices. Returns
/// human-readable differences (empty = the plans are the same). This is the
/// Corollary 1 check: a local re-plan (UpdatePlan / ReplanForTopology)
/// after a topology change must equal a from-scratch global re-plan.
std::vector<std::string> FindPlanDivergence(const GlobalPlan& patched,
                                            const GlobalPlan& fresh);

/// True iff FindPlanDivergence is empty.
bool PlansEquivalent(const GlobalPlan& a, const GlobalPlan& b);

/// Safe-transition precondition for the self-healing epoch protocol: if two
/// plan generations differ in any node's installed tables, they must carry
/// distinct plan epochs — otherwise the runtime's epoch gate cannot tell
/// their packets apart and a mixed-generation round could silently merge
/// partial records produced under different plans. Returns human-readable
/// violations: one entry per content-changed node whenever the two compiled
/// plans share an epoch (empty = the transition is safe to disseminate).
std::vector<std::string> FindEpochTransitionHazards(
    const CompiledPlan& old_compiled, const FunctionSet& old_functions,
    const CompiledPlan& new_compiled, const FunctionSet& new_functions);

}  // namespace m2m

#endif  // M2M_PLAN_CONSISTENCY_H_
