#ifndef M2M_PLAN_CONSISTENCY_H_
#define M2M_PLAN_CONSISTENCY_H_

#include <string>
#include <vector>

#include "plan/planner.h"

namespace m2m {

/// Checks the Theorem 1 guarantee on an assembled plan: along every route
/// (s, d), (a) every edge serves the pair (raw s or partial d — i.e. each
/// per-edge solution is a vertex cover), and (b) once an edge stops
/// transmitting s raw, no downstream edge of the route transmits s raw
/// again (a value cannot be recovered after aggregation). Returns
/// human-readable descriptions of all violations (empty = consistent).
std::vector<std::string> FindConsistencyViolations(const GlobalPlan& plan);

/// True iff FindConsistencyViolations is empty.
bool ValidatePlanConsistency(const GlobalPlan& plan);

}  // namespace m2m

#endif  // M2M_PLAN_CONSISTENCY_H_
