#include "plan/dissemination.h"

#include <vector>

#include "common/check.h"
#include "plan/serialization.h"

namespace m2m {

namespace {

// Packets needed for an image of `bytes` bytes.
int64_t PacketCount(size_t bytes) {
  return static_cast<int64_t>(
      (bytes + kDisseminationPacketPayloadBytes - 1) /
      kDisseminationPacketPayloadBytes);
}

// Charges shipping one node image from the base station to `node`.
void ChargeImage(const PathSystem& paths, NodeId base_station, NodeId node,
                 size_t image_bytes, const EnergyModel& energy,
                 DisseminationCost& cost) {
  cost.nodes_updated += 1;
  cost.state_bytes += static_cast<int64_t>(image_bytes);
  if (node == base_station) return;  // Installed locally for free.
  int hops = paths.HopDistance(base_station, node);
  size_t remaining = image_bytes;
  while (remaining > 0) {
    int payload = static_cast<int>(
        remaining > kDisseminationPacketPayloadBytes
            ? kDisseminationPacketPayloadBytes
            : remaining);
    remaining -= payload;
    cost.packets += hops;
    cost.energy_mj += hops * energy.UnicastHopUj(payload) / 1000.0;
  }
  // Zero-byte images (possible only for empty states, filtered by callers)
  // would ship nothing.
  M2M_CHECK_GT(PacketCount(image_bytes), 0);
}

bool ImageIsEmptyState(const NodeState& state) {
  return state.raw_table.empty() && state.preagg_table.empty() &&
         state.partial_table.empty() && state.outgoing_table.empty() &&
         !state.is_destination;
}

}  // namespace

DisseminationCost ComputeFullDissemination(const CompiledPlan& compiled,
                                           const FunctionSet& functions,
                                           const PathSystem& paths,
                                           NodeId base_station,
                                           const EnergyModel& energy) {
  DisseminationCost cost;
  std::vector<std::vector<uint8_t>> images =
      EncodeAllNodeStates(compiled, functions);
  for (NodeId n = 0; n < compiled.node_count(); ++n) {
    if (ImageIsEmptyState(compiled.state(n))) continue;
    ChargeImage(paths, base_station, n, images[n].size(), energy, cost);
  }
  return cost;
}

DisseminationCost ComputeIncrementalDissemination(
    const CompiledPlan& old_compiled, const FunctionSet& old_functions,
    const CompiledPlan& new_compiled, const FunctionSet& new_functions,
    const PathSystem& paths, NodeId base_station, const EnergyModel& energy) {
  M2M_CHECK_EQ(old_compiled.node_count(), new_compiled.node_count());
  DisseminationCost cost;
  std::vector<std::vector<uint8_t>> old_images =
      EncodeAllNodeStates(old_compiled, old_functions);
  std::vector<std::vector<uint8_t>> new_images =
      EncodeAllNodeStates(new_compiled, new_functions);
  for (NodeId n = 0; n < new_compiled.node_count(); ++n) {
    // Content comparison: an epoch advance alone does not re-ship tables.
    if (ImageContentsEqual(old_images[n], new_images[n])) continue;
    if (ImageIsEmptyState(new_compiled.state(n))) {
      // The node dropped out of the plan; ship a (1-byte) clear command.
      ChargeImage(paths, base_station, n, 1, energy, cost);
      continue;
    }
    ChargeImage(paths, base_station, n, new_images[n].size(), energy, cost);
  }
  return cost;
}

std::vector<NodeImageDelta> DiffNodeImages(
    const std::vector<std::vector<uint8_t>>& old_images,
    const std::vector<std::vector<uint8_t>>& new_images) {
  M2M_CHECK_EQ(old_images.size(), new_images.size());
  // Wire image of a NodeState with no entries: epoch 0, four zero table
  // counts, is_destination = 0.
  static const std::vector<uint8_t> kEmptyImage(6, 0);
  std::vector<NodeImageDelta> deltas;
  for (size_t n = 0; n < new_images.size(); ++n) {
    const bool changed = !ImageContentsEqual(old_images[n], new_images[n]);
    const bool participates =
        !ImageContentsEqual(old_images[n], kEmptyImage) ||
        !ImageContentsEqual(new_images[n], kEmptyImage);
    if (!participates) continue;
    deltas.push_back(NodeImageDelta{static_cast<NodeId>(n), changed});
  }
  return deltas;
}

}  // namespace m2m
