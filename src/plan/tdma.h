#ifndef M2M_PLAN_TDMA_H_
#define M2M_PLAN_TDMA_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "plan/node_tables.h"
#include "topology/topology.h"

namespace m2m {

/// One scheduled hop transmission: message `message` crossing hop index
/// `hop` of its edge's physical segment during `slot`.
struct TdmaAssignment {
  int message = -1;
  int hop = 0;
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  int slot = -1;
};

/// A collision-free slotted transmission schedule for one round of a
/// compiled plan (paper section 3's "detailed transmission schedule ...
/// avoiding collisions and reducing node listening time").
struct TdmaSchedule {
  std::vector<TdmaAssignment> assignments;
  int slot_count = 0;
  /// Slots each node must keep its radio in receive mode (only the slots in
  /// which it is an intended receiver). The unscheduled alternative is
  /// idle-listening every slot.
  std::vector<int> listen_slots;

  int64_t total_listen_slots() const;
  /// Listening load if every node idled through the whole round instead.
  int64_t unscheduled_listen_slots() const {
    return static_cast<int64_t>(listen_slots.size()) * slot_count;
  }
};

/// Greedy earliest-slot scheduling over the message wait-for DAG with the
/// protocol interference model: two hops may not share a slot when either
/// sender is within radio range of the other's receiver, or when they touch
/// a common node. Hops of one message serialize; a message's first hop
/// waits for every message it depends on.
TdmaSchedule BuildTdmaSchedule(const CompiledPlan& compiled,
                               const Topology& topology);

/// Verifies dependency and interference constraints; used by tests and
/// CHECKed at build time.
bool ValidateTdmaSchedule(const TdmaSchedule& schedule,
                          const CompiledPlan& compiled,
                          const Topology& topology);

}  // namespace m2m

#endif  // M2M_PLAN_TDMA_H_
