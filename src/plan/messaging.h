#ifndef M2M_PLAN_MESSAGING_H_
#define M2M_PLAN_MESSAGING_H_

#include <vector>

#include "agg/aggregate_function.h"
#include "plan/planner.h"

namespace m2m {

/// One message unit: a raw value or a partial aggregate record traveling on
/// one forest edge (paper section 3).
struct MessageUnit {
  int edge_index = -1;
  bool is_partial = false;  ///< false: raw value, subject = source id.
  NodeId subject = kInvalidNode;
  int unit_bytes = 0;
};

/// How units are packed into messages.
enum class MergePolicy {
  /// The paper's greedy merge: units on the same edge are merged into as few
  /// messages as possible without creating wait-for cycles (in all
  /// experiments this yields one message per edge).
  kGreedyMergePerEdge,
  /// Each unit ships in its own message (the "straightforward, though
  /// suboptimal" scheme Theorem 2 enables). Used by the merge ablation.
  kOneUnitPerMessage,
};

/// The message-level realization of a plan: the wait-for DAG over units
/// (Theorem 2 guarantees acyclicity) and the packing of units into
/// messages.
class MessageSchedule {
 public:
  struct Message {
    int edge_index = -1;
    std::vector<int> unit_ids;
  };

  static MessageSchedule Build(const GlobalPlan& plan,
                               const FunctionSet& functions,
                               MergePolicy policy);

  MessageSchedule(const MessageSchedule&) = default;
  MessageSchedule& operator=(const MessageSchedule&) = default;

  const std::vector<MessageUnit>& units() const { return units_; }
  /// wait_for()[u] = ids of units that unit u waits for.
  const std::vector<std::vector<int>>& wait_for() const { return wait_for_; }
  const std::vector<Message>& messages() const { return messages_; }

  /// Unit ids on a given edge.
  const std::vector<int>& units_on_edge(int edge_index) const;

  /// Id of the message carrying `unit_id`.
  int message_of_unit(int unit_id) const;

  /// True iff the unit wait-for graph has no cycles (Theorem 2).
  bool UnitsAcyclic() const;

  /// Topological order of units; CHECK-fails if cyclic.
  std::vector<int> TopologicalUnitOrder() const;

  /// True iff the *message* graph (wait-for lifted to messages) is acyclic;
  /// the greedy merge maintains this invariant.
  bool MessagesAcyclic() const;

  int64_t message_count() const {
    return static_cast<int64_t>(messages_.size());
  }

 private:
  MessageSchedule() = default;

  std::vector<MessageUnit> units_;
  std::vector<std::vector<int>> wait_for_;
  std::vector<Message> messages_;
  std::vector<std::vector<int>> units_by_edge_;
  std::vector<int> message_of_unit_;
};

}  // namespace m2m

#endif  // M2M_PLAN_MESSAGING_H_
