#include "plan/messaging.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <tuple>

#include "agg/partial_record.h"
#include "common/check.h"

namespace m2m {

namespace {

// Kahn's algorithm: returns a topological order, or an empty vector if the
// graph has a cycle (and `node_count` > 0).
std::vector<int> TopoOrder(int node_count,
                           const std::vector<std::vector<int>>& deps) {
  std::vector<int> out_degree_into(node_count, 0);  // #unmet dependencies
  std::vector<std::vector<int>> dependents(node_count);
  for (int v = 0; v < node_count; ++v) {
    out_degree_into[v] = static_cast<int>(deps[v].size());
    for (int u : deps[v]) dependents[u].push_back(v);
  }
  std::queue<int> ready;
  for (int v = 0; v < node_count; ++v) {
    if (out_degree_into[v] == 0) ready.push(v);
  }
  std::vector<int> order;
  order.reserve(node_count);
  while (!ready.empty()) {
    int u = ready.front();
    ready.pop();
    order.push_back(u);
    for (int v : dependents[u]) {
      if (--out_degree_into[v] == 0) ready.push(v);
    }
  }
  if (static_cast<int>(order.size()) != node_count) return {};
  return order;
}

}  // namespace

MessageSchedule MessageSchedule::Build(const GlobalPlan& plan,
                                       const FunctionSet& functions,
                                       MergePolicy policy) {
  MessageSchedule schedule;
  const MulticastForest& forest = plan.forest();
  const int edge_count = static_cast<int>(forest.edges().size());
  schedule.units_by_edge_.resize(edge_count);

  // 1. Enumerate units.
  std::map<std::tuple<int, bool, NodeId>, int> unit_id;
  for (int e = 0; e < edge_count; ++e) {
    const EdgePlan& edge_plan = plan.plan_for(e);
    for (NodeId s : edge_plan.raw_sources) {
      int id = static_cast<int>(schedule.units_.size());
      schedule.units_.push_back(
          MessageUnit{e, /*is_partial=*/false, s, kRawUnitBytes});
      unit_id[{e, false, s}] = id;
      schedule.units_by_edge_[e].push_back(id);
    }
    for (NodeId d : edge_plan.agg_destinations) {
      int id = static_cast<int>(schedule.units_.size());
      schedule.units_.push_back(MessageUnit{
          e, /*is_partial=*/true, d,
          kIdTagBytes + functions.Get(d).partial_record_bytes()});
      unit_id[{e, true, d}] = id;
      schedule.units_by_edge_[e].push_back(id);
    }
  }

  // 2. Wait-for relation from consecutive edges along every route.
  std::vector<std::set<int>> wait_sets(schedule.units_.size());
  for (const Task& task : forest.tasks()) {
    const NodeId d = task.destination;
    for (NodeId s : task.sources) {
      if (s == d) continue;
      const std::vector<int>& route = forest.Route(SourceDestPair{s, d});
      for (size_t i = 1; i < route.size(); ++i) {
        int prev = route[i - 1];
        int cur = route[i];
        const EdgePlan& prev_plan = plan.plan_for(prev);
        const EdgePlan& cur_plan = plan.plan_for(cur);
        // The contribution of s arrives at cur's tail either raw or inside
        // d's partial record from prev.
        int upstream_unit;
        if (prev_plan.TransmitsRaw(s)) {
          upstream_unit = unit_id.at({prev, false, s});
        } else {
          M2M_CHECK(prev_plan.TransmitsAggregate(d))
              << "inconsistent plan: pair uncovered on upstream edge";
          upstream_unit = unit_id.at({prev, true, d});
        }
        if (cur_plan.TransmitsRaw(s)) {
          // Raw s continues downstream: it waits for the raw copy (which
          // must exist upstream in a consistent plan). Its contribution to
          // d folds further downstream, so d's partial on this edge (if
          // any) does not wait on it.
          M2M_CHECK(prev_plan.TransmitsRaw(s))
              << "inconsistent plan: raw after aggregation";
          wait_sets[unit_id.at({cur, false, s})].insert(upstream_unit);
        } else {
          M2M_CHECK(cur_plan.TransmitsAggregate(d))
              << "inconsistent plan: pair uncovered";
          wait_sets[unit_id.at({cur, true, d})].insert(upstream_unit);
        }
      }
    }
  }
  schedule.wait_for_.resize(schedule.units_.size());
  for (size_t u = 0; u < wait_sets.size(); ++u) {
    schedule.wait_for_[u].assign(wait_sets[u].begin(), wait_sets[u].end());
  }
  M2M_CHECK(schedule.UnitsAcyclic())
      << "Theorem 2 violated: wait-for cycle among message units";

  // 3. Pack units into messages.
  const int unit_count = static_cast<int>(schedule.units_.size());
  schedule.message_of_unit_.assign(unit_count, -1);
  auto message_graph_acyclic = [&](const std::vector<int>& msg_of_unit,
                                   int message_count) {
    std::vector<std::set<int>> deps(message_count);
    for (int v = 0; v < unit_count; ++v) {
      for (int u : schedule.wait_for_[v]) {
        if (msg_of_unit[u] != msg_of_unit[v]) {
          deps[msg_of_unit[v]].insert(msg_of_unit[u]);
        }
      }
    }
    std::vector<std::vector<int>> dep_lists(message_count);
    for (int m = 0; m < message_count; ++m) {
      dep_lists[m].assign(deps[m].begin(), deps[m].end());
    }
    return message_count == 0 ||
           !TopoOrder(message_count, dep_lists).empty();
  };

  if (policy == MergePolicy::kOneUnitPerMessage) {
    for (int u = 0; u < unit_count; ++u) {
      schedule.message_of_unit_[u] = u;
      schedule.messages_.push_back(
          Message{schedule.units_[u].edge_index, {u}});
    }
    M2M_CHECK(schedule.MessagesAcyclic());
    return schedule;
  }

  // Greedy merge. Fast path: contract all units of each edge into one
  // message; in every experiment of the paper (and ours) this is already
  // acyclic. If not, fall back to pairwise greedy merging with cycle checks.
  std::vector<int> merged_all(unit_count);
  for (int u = 0; u < unit_count; ++u) {
    merged_all[u] = schedule.units_[u].edge_index;
  }
  if (message_graph_acyclic(merged_all, edge_count)) {
    // Compact away edges with no units.
    std::vector<int> message_index(edge_count, -1);
    for (int e = 0; e < edge_count; ++e) {
      if (schedule.units_by_edge_[e].empty()) continue;
      message_index[e] = static_cast<int>(schedule.messages_.size());
      schedule.messages_.push_back(Message{e, schedule.units_by_edge_[e]});
    }
    for (int u = 0; u < unit_count; ++u) {
      schedule.message_of_unit_[u] =
          message_index[schedule.units_[u].edge_index];
    }
    M2M_CHECK(schedule.MessagesAcyclic());
    return schedule;
  }

  // Pairwise greedy: start one message per unit; repeatedly merge two
  // messages on the same edge when the merged graph stays acyclic.
  std::vector<int> msg_of_unit(unit_count);
  for (int u = 0; u < unit_count; ++u) msg_of_unit[u] = u;
  for (int e = 0; e < edge_count; ++e) {
    const std::vector<int>& edge_units = schedule.units_by_edge_[e];
    bool progress = true;
    while (progress) {
      progress = false;
      // Distinct messages currently on this edge.
      std::vector<int> edge_messages;
      for (int u : edge_units) {
        if (std::find(edge_messages.begin(), edge_messages.end(),
                      msg_of_unit[u]) == edge_messages.end()) {
          edge_messages.push_back(msg_of_unit[u]);
        }
      }
      for (size_t a = 0; a < edge_messages.size() && !progress; ++a) {
        for (size_t b = a + 1; b < edge_messages.size() && !progress; ++b) {
          std::vector<int> trial = msg_of_unit;
          for (int u : edge_units) {
            if (trial[u] == edge_messages[b]) trial[u] = edge_messages[a];
          }
          if (message_graph_acyclic(trial, unit_count)) {
            msg_of_unit = std::move(trial);
            progress = true;
          }
        }
      }
    }
  }
  // Compact message ids.
  std::map<int, int> compact;
  for (int u = 0; u < unit_count; ++u) {
    auto [it, inserted] = compact.emplace(
        msg_of_unit[u], static_cast<int>(schedule.messages_.size()));
    if (inserted) {
      schedule.messages_.push_back(
          Message{schedule.units_[u].edge_index, {}});
    }
    schedule.message_of_unit_[u] = it->second;
    schedule.messages_[it->second].unit_ids.push_back(u);
  }
  M2M_CHECK(schedule.MessagesAcyclic());
  return schedule;
}

const std::vector<int>& MessageSchedule::units_on_edge(int edge_index) const {
  M2M_CHECK(edge_index >= 0 &&
            edge_index < static_cast<int>(units_by_edge_.size()));
  return units_by_edge_[edge_index];
}

int MessageSchedule::message_of_unit(int unit_id) const {
  M2M_CHECK(unit_id >= 0 &&
            unit_id < static_cast<int>(message_of_unit_.size()));
  return message_of_unit_[unit_id];
}

bool MessageSchedule::UnitsAcyclic() const {
  return units_.empty() ||
         !TopoOrder(static_cast<int>(units_.size()), wait_for_).empty();
}

std::vector<int> MessageSchedule::TopologicalUnitOrder() const {
  if (units_.empty()) return {};
  std::vector<int> order =
      TopoOrder(static_cast<int>(units_.size()), wait_for_);
  M2M_CHECK(!order.empty()) << "wait-for cycle among units";
  return order;
}

bool MessageSchedule::MessagesAcyclic() const {
  const int message_count = static_cast<int>(messages_.size());
  if (message_count == 0) return true;
  std::vector<std::set<int>> deps(message_count);
  for (size_t v = 0; v < units_.size(); ++v) {
    for (int u : wait_for_[v]) {
      if (message_of_unit_[u] != message_of_unit_[v]) {
        deps[message_of_unit_[v]].insert(message_of_unit_[u]);
      }
    }
  }
  std::vector<std::vector<int>> dep_lists(message_count);
  for (int m = 0; m < message_count; ++m) {
    dep_lists[m].assign(deps[m].begin(), deps[m].end());
  }
  return !TopoOrder(message_count, dep_lists).empty();
}

}  // namespace m2m
