#ifndef M2M_PLAN_PLANNER_H_
#define M2M_PLAN_PLANNER_H_

#include <memory>
#include <vector>

#include "agg/aggregate_function.h"
#include "cover/bipartite_cover.h"
#include "plan/edge_plan.h"
#include "routing/multicast.h"

namespace m2m {

/// Planning strategy. `kOptimal` is the paper's contribution; the other two
/// are the evaluated baselines and correspond to the two trivial covers.
enum class PlanStrategy {
  kOptimal,          ///< Minimum weighted vertex cover per edge.
  kMulticastOnly,    ///< All sources raw; aggregate only at destinations.
  kAggregationOnly,  ///< Aggregate at the earliest opportunity.
};

std::string ToString(PlanStrategy strategy);

struct PlannerOptions {
  PlanStrategy strategy = PlanStrategy::kOptimal;
  /// Seed of the per-(node, role) tiebreaker perturbations; the same seed
  /// must be used for every edge (and for incremental updates) so minima are
  /// consistent across instances (paper section 2.3).
  uint64_t tiebreak_seed = 0xc0ffee;
};

/// A complete many-to-many aggregation plan: one EdgePlan per forest edge.
class GlobalPlan {
 public:
  GlobalPlan(std::shared_ptr<const MulticastForest> forest,
             std::vector<EdgePlan> edge_plans, PlannerOptions options);

  GlobalPlan(const GlobalPlan&) = default;
  GlobalPlan& operator=(const GlobalPlan&) = default;

  const MulticastForest& forest() const { return *forest_; }
  std::shared_ptr<const MulticastForest> forest_ptr() const {
    return forest_;
  }
  const PlannerOptions& options() const { return options_; }

  const std::vector<EdgePlan>& edge_plans() const { return edge_plans_; }
  const EdgePlan& plan_for(int edge_index) const;

  /// Sum of unit payload bytes over milestone-level edges (each virtual edge
  /// counted once).
  int64_t TotalPayloadBytes() const;
  /// Payload bytes weighted by each edge's physical hop length — the actual
  /// radio bytes when virtual edges span several hops.
  int64_t TotalPhysicalPayloadBytes() const;
  int64_t TotalUnits() const;

 private:
  std::shared_ptr<const MulticastForest> forest_;
  std::vector<EdgePlan> edge_plans_;
  PlannerOptions options_;
};

/// Builds the single-edge optimization instance for `edge` (paper Figure 2):
/// sources/destinations connected through the edge with perturbed
/// raw-value / partial-record weights.
BipartiteInstance BuildEdgeInstance(const ForestEdge& edge,
                                    const FunctionSet& functions,
                                    uint64_t tiebreak_seed);

/// Solves one edge under the given strategy.
EdgePlan SolveEdge(const ForestEdge& edge, const FunctionSet& functions,
                   const PlannerOptions& options);

/// Plans every edge of the forest independently (Theorem 1 makes the
/// combination globally optimal and consistent for kOptimal).
GlobalPlan BuildPlan(std::shared_ptr<const MulticastForest> forest,
                     const FunctionSet& functions,
                     const PlannerOptions& options = {});

/// Bookkeeping from an incremental update.
struct UpdateStats {
  int edges_total = 0;
  int edges_reused = 0;
  int edges_reoptimized = 0;
};

/// Incremental re-optimization (Corollary 1): edges of `forest` whose
/// single-edge inputs are unchanged from `old_plan` keep their solutions;
/// only changed/new edges are re-solved. The result is identical to a full
/// BuildPlan over `forest` (asserted by tests).
GlobalPlan UpdatePlan(const GlobalPlan& old_plan,
                      std::shared_ptr<const MulticastForest> forest,
                      const FunctionSet& functions,
                      UpdateStats* stats = nullptr);

/// Local re-plan after a topology or membership change (paper section 3 /
/// Corollary 1): rebuilds the multicast forest over the (possibly
/// failure-masked) `paths` for the surviving `tasks`, then re-solves only
/// the edges whose single-edge instances changed. Because per-edge optima
/// are independent, the patched plan equals a from-scratch BuildPlan —
/// validate with FindPlanDivergence when it matters.
GlobalPlan ReplanForTopology(const GlobalPlan& old_plan,
                             const PathSystem& paths,
                             std::vector<Task> tasks,
                             const FunctionSet& functions,
                             UpdateStats* stats = nullptr);

/// Local re-plan after a *workload* change (Corollary 1, workload form):
/// inserting or deleting queries — or individual (source, destination)
/// pairs — perturbs only the edge instances whose bipartite neighborhoods
/// changed, so all other per-edge solutions carry over verbatim. `tasks`
/// and `functions` describe the new workload; `paths` is unchanged
/// routing. The result equals a from-scratch BuildPlan for the new
/// workload (validate with FindPlanDivergence / PredictedPerturbedEdges
/// when it matters).
GlobalPlan ReplanForWorkload(const GlobalPlan& old_plan,
                             const PathSystem& paths,
                             std::vector<Task> tasks,
                             const FunctionSet& functions,
                             UpdateStats* stats = nullptr);

}  // namespace m2m

#endif  // M2M_PLAN_PLANNER_H_
