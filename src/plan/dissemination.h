#ifndef M2M_PLAN_DISSEMINATION_H_
#define M2M_PLAN_DISSEMINATION_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate_function.h"
#include "plan/node_tables.h"
#include "routing/path_system.h"
#include "sim/energy_model.h"

namespace m2m {

/// Maximum plan bytes per radio packet during dissemination; larger node
/// images are split across packets, each paying the message header.
inline constexpr int kDisseminationPacketPayloadBytes = 64;

/// Payload bytes of an epoch-bump control packet: a node whose table
/// content survived a re-plan unchanged receives only the new epoch (a
/// varint), not its full image. Sized for the 5-byte worst-case varint.
inline constexpr int kEpochBumpPayloadBytes = 5;

/// One node's entry in a plan-update diff (see DiffNodeImages).
struct NodeImageDelta {
  NodeId node = kInvalidNode;
  /// True: ship the full new image (table content changed). False: table
  /// content is unchanged and only the epoch advances (ship a bump).
  bool ship_image = false;
};

/// Content-compares per-node images of two plan generations (epoch prefixes
/// ignored) and returns, in ascending node order, every node that must hear
/// about the new epoch: changed nodes as ship_image = true, unchanged but
/// participating nodes (non-empty content in either generation) as
/// ship_image = false. Nodes with empty content in both generations hold no
/// state and are skipped entirely. This is the unit of work the
/// self-healing dissemination protocol retries until acked.
std::vector<NodeImageDelta> DiffNodeImages(
    const std::vector<std::vector<uint8_t>>& old_images,
    const std::vector<std::vector<uint8_t>>& new_images);

/// Cost of installing plan state into the network from the base station.
struct DisseminationCost {
  int nodes_updated = 0;
  int64_t state_bytes = 0;   ///< Sum of shipped node-image bytes.
  int64_t packets = 0;       ///< Radio packets (per hop).
  double energy_mj = 0.0;
};

/// Ships every non-empty node image from `base_station` along canonical
/// paths (each hop pays TX+RX for each packet). This is the cost of
/// installing a plan from scratch.
DisseminationCost ComputeFullDissemination(const CompiledPlan& compiled,
                                           const FunctionSet& functions,
                                           const PathSystem& paths,
                                           NodeId base_station,
                                           const EnergyModel& energy);

/// Ships only the node images that differ between the old and the new
/// compiled plan (byte-compared; node-local message ids keep unchanged
/// nodes' images stable). This is the Corollary 1 payoff: a localized plan
/// change updates only the nodes along the affected routes.
DisseminationCost ComputeIncrementalDissemination(
    const CompiledPlan& old_compiled, const FunctionSet& old_functions,
    const CompiledPlan& new_compiled, const FunctionSet& new_functions,
    const PathSystem& paths, NodeId base_station, const EnergyModel& energy);

}  // namespace m2m

#endif  // M2M_PLAN_DISSEMINATION_H_
