#include "plan/tdma.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/check.h"

namespace m2m {

namespace {

// Message-level dependencies derived from the unit wait-for graph.
std::vector<std::vector<int>> MessageDeps(const MessageSchedule& schedule) {
  const int message_count = static_cast<int>(schedule.messages().size());
  std::vector<std::set<int>> deps(message_count);
  for (size_t v = 0; v < schedule.units().size(); ++v) {
    int mv = schedule.message_of_unit(static_cast<int>(v));
    for (int u : schedule.wait_for()[v]) {
      int mu = schedule.message_of_unit(u);
      if (mu != mv) deps[mv].insert(mu);
    }
  }
  std::vector<std::vector<int>> out(message_count);
  for (int m = 0; m < message_count; ++m) {
    out[m].assign(deps[m].begin(), deps[m].end());
  }
  return out;
}

bool Conflicts(const Topology& topology, NodeId sender_a, NodeId receiver_a,
               NodeId sender_b, NodeId receiver_b) {
  // Shared node: a radio cannot do two things in one slot.
  if (sender_a == sender_b || sender_a == receiver_b ||
      receiver_a == sender_b || receiver_a == receiver_b) {
    return true;
  }
  // Protocol interference: a sender in range of the other's receiver.
  return topology.AreNeighbors(sender_a, receiver_b) ||
         topology.AreNeighbors(sender_b, receiver_a);
}

}  // namespace

int64_t TdmaSchedule::total_listen_slots() const {
  int64_t total = 0;
  for (int slots : listen_slots) total += slots;
  return total;
}

TdmaSchedule BuildTdmaSchedule(const CompiledPlan& compiled,
                               const Topology& topology) {
  const MessageSchedule& schedule = compiled.schedule();
  const MulticastForest& forest = compiled.plan().forest();
  const int message_count = static_cast<int>(schedule.messages().size());
  std::vector<std::vector<int>> deps = MessageDeps(schedule);

  // Topological order over messages (Kahn).
  std::vector<int> unmet(message_count);
  std::vector<std::vector<int>> dependents(message_count);
  std::queue<int> ready;
  for (int m = 0; m < message_count; ++m) {
    unmet[m] = static_cast<int>(deps[m].size());
    for (int d : deps[m]) dependents[d].push_back(m);
    if (unmet[m] == 0) ready.push(m);
  }
  std::vector<int> order;
  order.reserve(message_count);
  while (!ready.empty()) {
    int m = ready.front();
    ready.pop();
    order.push_back(m);
    for (int d : dependents[m]) {
      if (--unmet[d] == 0) ready.push(d);
    }
  }
  M2M_CHECK_EQ(static_cast<int>(order.size()), message_count)
      << "message dependency cycle";

  TdmaSchedule result;
  result.listen_slots.assign(topology.node_count(), 0);
  // Per slot, the hop transmissions already placed there.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> slots;
  std::vector<int> message_done_slot(message_count, -1);

  for (int m : order) {
    int earliest = 0;
    for (int d : deps[m]) {
      earliest = std::max(earliest, message_done_slot[d] + 1);
    }
    const std::vector<NodeId>& segment =
        forest.edges()[schedule.messages()[m].edge_index].segment;
    int previous_slot = earliest - 1;
    for (size_t h = 0; h + 1 < segment.size(); ++h) {
      NodeId sender = segment[h];
      NodeId receiver = segment[h + 1];
      int slot = previous_slot + 1;
      while (true) {
        if (slot >= static_cast<int>(slots.size())) {
          slots.resize(slot + 1);
        }
        bool clash = false;
        for (const auto& [other_sender, other_receiver] : slots[slot]) {
          if (Conflicts(topology, sender, receiver, other_sender,
                        other_receiver)) {
            clash = true;
            break;
          }
        }
        if (!clash) break;
        ++slot;
      }
      slots[slot].emplace_back(sender, receiver);
      result.assignments.push_back(
          TdmaAssignment{m, static_cast<int>(h), sender, receiver, slot});
      result.listen_slots[receiver] += 1;
      previous_slot = slot;
    }
    message_done_slot[m] = previous_slot;
  }
  result.slot_count = static_cast<int>(slots.size());
  M2M_CHECK(ValidateTdmaSchedule(result, compiled, topology));
  return result;
}

bool ValidateTdmaSchedule(const TdmaSchedule& schedule,
                          const CompiledPlan& compiled,
                          const Topology& topology) {
  // Interference freedom per slot.
  std::map<int, std::vector<const TdmaAssignment*>> by_slot;
  for (const TdmaAssignment& a : schedule.assignments) {
    if (a.slot < 0 || a.slot >= schedule.slot_count) return false;
    by_slot[a.slot].push_back(&a);
  }
  for (const auto& [slot, list] : by_slot) {
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        if (Conflicts(topology, list[i]->sender, list[i]->receiver,
                      list[j]->sender, list[j]->receiver)) {
          return false;
        }
      }
    }
  }
  // Hop ordering within each message, and dependency ordering across
  // messages.
  const MessageSchedule& messages = compiled.schedule();
  std::map<std::pair<int, int>, int> slot_of;  // (message, hop) -> slot
  std::map<int, int> last_slot;
  for (const TdmaAssignment& a : schedule.assignments) {
    slot_of[{a.message, a.hop}] = a.slot;
    auto [it, inserted] = last_slot.emplace(a.message, a.slot);
    if (!inserted) it->second = std::max(it->second, a.slot);
  }
  for (const TdmaAssignment& a : schedule.assignments) {
    if (a.hop > 0) {
      auto prev = slot_of.find({a.message, a.hop - 1});
      if (prev == slot_of.end() || prev->second >= a.slot) return false;
    }
  }
  std::vector<std::vector<int>> deps = MessageDeps(messages);
  for (size_t m = 0; m < deps.size(); ++m) {
    auto first = slot_of.find({static_cast<int>(m), 0});
    if (first == slot_of.end()) continue;  // Zero-hop message (none exist).
    for (int d : deps[m]) {
      auto done = last_slot.find(d);
      if (done == last_slot.end()) continue;
      if (done->second >= first->second) return false;
    }
  }
  return true;
}

}  // namespace m2m
