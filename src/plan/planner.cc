#include "plan/planner.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "agg/partial_record.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace m2m {

std::string ToString(PlanStrategy strategy) {
  switch (strategy) {
    case PlanStrategy::kOptimal:
      return "optimal";
    case PlanStrategy::kMulticastOnly:
      return "multicast";
    case PlanStrategy::kAggregationOnly:
      return "aggregation";
  }
  return "unknown";
}

GlobalPlan::GlobalPlan(std::shared_ptr<const MulticastForest> forest,
                       std::vector<EdgePlan> edge_plans,
                       PlannerOptions options)
    : forest_(std::move(forest)),
      edge_plans_(std::move(edge_plans)),
      options_(options) {
  M2M_CHECK(forest_ != nullptr);
  M2M_CHECK_EQ(edge_plans_.size(), forest_->edges().size());
}

const EdgePlan& GlobalPlan::plan_for(int edge_index) const {
  M2M_CHECK(edge_index >= 0 &&
            edge_index < static_cast<int>(edge_plans_.size()));
  return edge_plans_[edge_index];
}

int64_t GlobalPlan::TotalPayloadBytes() const {
  int64_t total = 0;
  for (const EdgePlan& p : edge_plans_) total += p.payload_bytes;
  return total;
}

int64_t GlobalPlan::TotalPhysicalPayloadBytes() const {
  int64_t total = 0;
  for (size_t i = 0; i < edge_plans_.size(); ++i) {
    total += edge_plans_[i].payload_bytes *
             forest_->edges()[i].hop_length();
  }
  return total;
}

int64_t GlobalPlan::TotalUnits() const {
  int64_t total = 0;
  for (const EdgePlan& p : edge_plans_) total += p.unit_count();
  return total;
}

namespace {

/// Byte size of one partial-record message unit for `destination`.
int PartialUnitBytes(const FunctionSet& functions, NodeId destination) {
  return kIdTagBytes + functions.Get(destination).partial_record_bytes();
}

uint64_t InstanceSignature(const ForestEdge& edge,
                           const FunctionSet& functions,
                           uint64_t tiebreak_seed) {
  uint64_t h = SplitMix64(tiebreak_seed);
  for (const SourceDestPair& pair : edge.pairs) {
    h = SplitMix64(h ^ (static_cast<uint64_t>(pair.source) << 32) ^
                   static_cast<uint32_t>(pair.destination));
    h = SplitMix64(
        h ^ static_cast<uint64_t>(PartialUnitBytes(functions,
                                                   pair.destination)));
  }
  return h;
}

}  // namespace

BipartiteInstance BuildEdgeInstance(const ForestEdge& edge,
                                    const FunctionSet& functions,
                                    uint64_t tiebreak_seed) {
  BipartiteInstance instance;
  std::map<NodeId, int> source_index;
  std::map<NodeId, int> destination_index;
  for (const SourceDestPair& pair : edge.pairs) {
    if (!source_index.contains(pair.source)) {
      source_index[pair.source] = static_cast<int>(instance.sources.size());
      instance.sources.push_back(CoverVertex{
          pair.source, PerturbedWeight(kRawUnitBytes, pair.source,
                                       /*is_destination=*/false,
                                       tiebreak_seed)});
    }
    if (!destination_index.contains(pair.destination)) {
      destination_index[pair.destination] =
          static_cast<int>(instance.destinations.size());
      instance.destinations.push_back(CoverVertex{
          pair.destination,
          PerturbedWeight(PartialUnitBytes(functions, pair.destination),
                          pair.destination, /*is_destination=*/true,
                          tiebreak_seed)});
    }
    instance.edges.emplace_back(source_index[pair.source],
                                destination_index[pair.destination]);
  }
  return instance;
}

EdgePlan SolveEdge(const ForestEdge& edge, const FunctionSet& functions,
                   const PlannerOptions& options) {
  BipartiteInstance instance =
      BuildEdgeInstance(edge, functions, options.tiebreak_seed);
  EdgePlan plan;
  plan.instance_signature =
      InstanceSignature(edge, functions, options.tiebreak_seed);
  switch (options.strategy) {
    case PlanStrategy::kOptimal: {
      CoverSolution cover = SolveMinWeightVertexCover(instance);
      for (size_t i = 0; i < instance.sources.size(); ++i) {
        if (cover.source_in_cover[i]) {
          plan.raw_sources.push_back(instance.sources[i].node);
        }
      }
      for (size_t j = 0; j < instance.destinations.size(); ++j) {
        if (cover.destination_in_cover[j]) {
          plan.agg_destinations.push_back(instance.destinations[j].node);
        }
      }
      break;
    }
    case PlanStrategy::kMulticastOnly:
      for (const CoverVertex& v : instance.sources) {
        plan.raw_sources.push_back(v.node);
      }
      break;
    case PlanStrategy::kAggregationOnly:
      for (const CoverVertex& v : instance.destinations) {
        plan.agg_destinations.push_back(v.node);
      }
      break;
  }
  // Instance vertices are inserted in pair-encounter order; the plan's
  // contract is sorted lists (EdgePlan lookups use binary search).
  std::sort(plan.raw_sources.begin(), plan.raw_sources.end());
  std::sort(plan.agg_destinations.begin(), plan.agg_destinations.end());
  plan.payload_bytes =
      static_cast<int64_t>(plan.raw_sources.size()) * kRawUnitBytes;
  for (NodeId d : plan.agg_destinations) {
    plan.payload_bytes += PartialUnitBytes(functions, d);
  }
  return plan;
}

GlobalPlan BuildPlan(std::shared_ptr<const MulticastForest> forest,
                     const FunctionSet& functions,
                     const PlannerOptions& options) {
  M2M_CHECK(forest != nullptr);
  // Theorem 1: each edge's min-weight vertex cover is an independent
  // instance, so the solves fan out across shards; results land by edge
  // index, so the plan bytes match the serial path for any thread count.
  const std::vector<ForestEdge>& edges = forest->edges();
  std::vector<EdgePlan> plans(edges.size());
  ParallelFor(static_cast<int64_t>(edges.size()),
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  plans[i] = SolveEdge(edges[i], functions, options);
                }
              });
  return GlobalPlan(std::move(forest), std::move(plans), options);
}

GlobalPlan UpdatePlan(const GlobalPlan& old_plan,
                      std::shared_ptr<const MulticastForest> forest,
                      const FunctionSet& functions, UpdateStats* stats) {
  M2M_CHECK(forest != nullptr);
  const PlannerOptions& options = old_plan.options();
  // Index old edges by their milestone-level (tail, head) key.
  std::unordered_map<DirectedEdge, int, DirectedEdgeHash> old_index;
  const auto& old_edges = old_plan.forest().edges();
  for (size_t i = 0; i < old_edges.size(); ++i) {
    old_index.emplace(old_edges[i].edge, static_cast<int>(i));
  }
  UpdateStats local_stats;
  local_stats.edges_total = static_cast<int>(forest->edges().size());
  // Corollary 1 localizes the update to edges whose instance signature
  // changed; both the signature probes and the re-solves are per-edge
  // independent, so the whole pass shards like BuildPlan. `old_index` is
  // read-only here and `reused` is written by index — no shared state.
  const std::vector<ForestEdge>& edges = forest->edges();
  std::vector<EdgePlan> plans(edges.size());
  std::vector<uint8_t> reused(edges.size(), 0);
  ParallelFor(
      static_cast<int64_t>(edges.size()), [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const ForestEdge& edge = edges[i];
          auto it = old_index.find(edge.edge);
          if (it != old_index.end()) {
            const EdgePlan& candidate = old_plan.edge_plans()[it->second];
            if (candidate.instance_signature ==
                InstanceSignature(edge, functions, options.tiebreak_seed)) {
              plans[i] = candidate;
              reused[i] = 1;
              continue;
            }
          }
          plans[i] = SolveEdge(edge, functions, options);
        }
      });
  for (uint8_t r : reused) {
    if (r != 0) {
      ++local_stats.edges_reused;
    } else {
      ++local_stats.edges_reoptimized;
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return GlobalPlan(std::move(forest), std::move(plans), options);
}

GlobalPlan ReplanForTopology(const GlobalPlan& old_plan,
                             const PathSystem& paths,
                             std::vector<Task> tasks,
                             const FunctionSet& functions,
                             UpdateStats* stats) {
  auto forest = std::make_shared<MulticastForest>(paths, std::move(tasks));
  return UpdatePlan(old_plan, std::move(forest), functions, stats);
}

GlobalPlan ReplanForWorkload(const GlobalPlan& old_plan,
                             const PathSystem& paths,
                             std::vector<Task> tasks,
                             const FunctionSet& functions,
                             UpdateStats* stats) {
  // Topology and workload perturbations are symmetric under Corollary 1:
  // both reduce to rebuilding the forest and re-solving only the edges
  // whose instance signatures changed. The two entry points exist because
  // their callers reason about different invariants (believed topology vs.
  // query catalog) and their perturbation oracles differ
  // (PredictedPerturbedEdges derives the workload form).
  auto forest = std::make_shared<MulticastForest>(paths, std::move(tasks));
  return UpdatePlan(old_plan, std::move(forest), functions, stats);
}

}  // namespace m2m
