#include "plan/edge_plan.h"

#include <algorithm>

namespace m2m {

bool EdgePlan::TransmitsRaw(NodeId source) const {
  return std::binary_search(raw_sources.begin(), raw_sources.end(), source);
}

bool EdgePlan::TransmitsAggregate(NodeId destination) const {
  return std::binary_search(agg_destinations.begin(), agg_destinations.end(),
                            destination);
}

}  // namespace m2m
