#ifndef M2M_PLAN_SERIALIZATION_H_
#define M2M_PLAN_SERIALIZATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "agg/aggregate_function.h"
#include "plan/node_tables.h"

namespace m2m {

/// Binary wire image of one node's runtime state (paper section 3's four
/// tables plus the destination flag). This is what dissemination ships into
/// the network and what a mote would hold in RAM.
///
/// Message identifiers are *node-local* (the index of the message in the
/// node's own outgoing table), so a node's image is stable as long as its
/// role in the plan is unchanged — the property that makes incremental
/// dissemination cheap after localized plan updates (Corollary 1).
///
/// Layout (all multi-byte integers little-endian, counts as varints):
///   varint plan_epoch
///   varint raw_count        { varint source; varint local_msg }*
///   varint preagg_count     { varint source; varint destination;
///                             u8 kind; f32 weight; f32 param }*
///   varint partial_count    { varint destination; varint expected;
///                             varint local_msg_plus1 (0 = consumed here);
///                             u8 kind }*
///   varint outgoing_count   { varint unit_count; varint recipient }*
///   u8 is_destination
///
/// The pre-aggregation entries carry the operational form of w_{d,s}
/// (function kind + weight + kind parameter) and partial entries the merge/
/// evaluate kind m_d/e_d, so a node can execute the plan from the image
/// alone (see runtime/NodeRuntime).
///
/// `plan_epoch` versions the plan the tables belong to (failure handling:
/// each base-station re-plan bumps the epoch, and the runtime refuses to
/// merge records across epochs). The epoch rides ahead of the table body so
/// plan *content* can be compared across epochs with ImageContentsEqual.
std::vector<uint8_t> EncodeNodeState(const NodeState& state,
                                     const FunctionSet& functions,
                                     uint32_t plan_epoch = 0);

/// Function metadata serialized with one pre-aggregation entry.
struct DecodedPreAggMeta {
  uint8_t kind = 0;  ///< static_cast<uint8_t>(AggregateKind).
  float weight = 1.0f;
  float param = 0.0f;
};

/// Decoded image; `preagg_meta[i]` belongs to `state.preagg_table[i]` and
/// `partial_kinds[i]` to `state.partial_table[i]`. Message ids in the
/// decoded state are the node-local ids of the image (outgoing segments are
/// not part of the wire image — the communication layer owns routes).
struct DecodedNodeState {
  NodeState state;
  std::vector<DecodedPreAggMeta> preagg_meta;
  std::vector<uint8_t> partial_kinds;
  /// Version of the plan these tables were compiled from.
  uint32_t plan_epoch = 0;
};

DecodedNodeState DecodeNodeState(const std::vector<uint8_t>& bytes);

/// Bounds-checked decode for untrusted bytes (a mote must survive a
/// corrupted dissemination packet): returns nullopt instead of
/// CHECK-failing on truncated or structurally invalid images. Validates
/// that node ids and counts are in range, that raw/partial entries
/// reference the outgoing table, and that the image is consumed exactly.
std::optional<DecodedNodeState> TryDecodeNodeState(
    const std::vector<uint8_t>& bytes);

/// Re-encodes a decoded image from its own stored function metadata (the
/// inverse of DecodeNodeState, needing no FunctionSet). For any image
/// produced by EncodeNodeState, decode + re-encode is byte-identical.
std::vector<uint8_t> EncodeDecodedNodeState(const DecodedNodeState& decoded);

/// Wire images for every node of a compiled plan, indexed by node id and
/// stamped with the compiled plan's epoch.
std::vector<std::vector<uint8_t>> EncodeAllNodeStates(
    const CompiledPlan& compiled, const FunctionSet& functions);

/// True iff two images carry the same table *content*, ignoring the plan
/// epoch prefix. Incremental dissemination diffs on content: a re-plan that
/// leaves a node's role unchanged must not re-ship its tables just because
/// the epoch advanced (Corollary 1 keeps the shipped diff small); such
/// nodes receive only a fixed-size epoch-bump control packet.
bool ImageContentsEqual(const std::vector<uint8_t>& a,
                        const std::vector<uint8_t>& b);

/// CRC32-framed image: image || crc32(image) (wire::FrameWithCrc32). The
/// frame dissemination actually ships, so channel bit-flips are rejected
/// by the checksum before the structural decoder ever runs.
std::vector<uint8_t> FrameNodeImage(const std::vector<uint8_t>& image);

/// Two-stage defense for a framed image off the wire: (1) CRC32 trailer
/// verification rejects transmission corruption, (2) TryDecodeNodeState
/// rejects structurally hostile payloads that carry a valid checksum.
/// nullopt if either stage fails.
std::optional<DecodedNodeState> TryDecodeFramedNodeState(
    const std::vector<uint8_t>& frame);

}  // namespace m2m

#endif  // M2M_PLAN_SERIALIZATION_H_
