#ifndef M2M_PLAN_NODE_TABLES_H_
#define M2M_PLAN_NODE_TABLES_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate_function.h"
#include "plan/messaging.h"
#include "plan/planner.h"

namespace m2m {

/// <s, g>: forward source s's raw value in outgoing message g.
struct RawTableEntry {
  NodeId source = kInvalidNode;
  int message_id = -1;
};

/// <s, d, w_{d,s}>: pre-aggregate s's raw value for destination d. The
/// pre-aggregation function itself lives in the FunctionSet; the entry
/// records that this node must apply it.
struct PreAggTableEntry {
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
};

/// <d, c, m_d, g>: combine `expected_contributions` partial records for d
/// (received or locally pre-aggregated) and send the result in message g
/// (message_id == -1 when d is this node and the result is consumed
/// locally).
struct PartialTableEntry {
  NodeId destination = kInvalidNode;
  int expected_contributions = 0;
  int message_id = -1;
};

/// <g, c, n'>: outgoing message g carries `unit_count` units to `recipient`
/// over the physical `segment` (tail..recipient inclusive).
struct OutgoingMessageEntry {
  int message_id = -1;
  int unit_count = 0;
  NodeId recipient = kInvalidNode;
  std::vector<NodeId> segment;
};

/// The runtime state installed at one node (paper section 3, "Implementing
/// Node Behavior").
struct NodeState {
  std::vector<RawTableEntry> raw_table;
  std::vector<PreAggTableEntry> preagg_table;
  std::vector<PartialTableEntry> partial_table;
  std::vector<OutgoingMessageEntry> outgoing_table;
  /// Destinations additionally store the evaluator e_d; flagged here.
  bool is_destination = false;

  /// Number of table entries (the unit of Theorem 3's state bound).
  int entry_count() const {
    return static_cast<int>(raw_table.size() + preagg_table.size() +
                            partial_table.size() + outgoing_table.size()) +
           (is_destination ? 1 : 0);
  }
};

/// Aggregate state-size accounting for Theorem 3.
struct StateTotals {
  int64_t raw_entries = 0;
  int64_t preagg_entries = 0;
  int64_t partial_entries = 0;
  int64_t outgoing_entries = 0;
  int64_t evaluator_entries = 0;
  int64_t total() const {
    return raw_entries + preagg_entries + partial_entries +
           outgoing_entries + evaluator_entries;
  }
  /// Theorem 3 reference quantities: sum of multicast tree sizes and sum of
  /// aggregation tree sizes.
  int64_t sum_multicast_tree_sizes = 0;
  int64_t sum_aggregation_tree_sizes = 0;
};

/// A GlobalPlan compiled into per-node tables plus its message schedule:
/// everything a node needs at runtime.
class CompiledPlan {
 public:
  /// `plan_epoch` versions the compiled tables for failure handling: every
  /// base-station re-plan compiles with a bumped epoch, the epoch is stamped
  /// into each node's wire image, and the runtime refuses to merge partials
  /// across epochs (see docs/THEORY.md section 8).
  static CompiledPlan Compile(const GlobalPlan& plan,
                              const FunctionSet& functions,
                              MergePolicy policy =
                                  MergePolicy::kGreedyMergePerEdge,
                              uint32_t plan_epoch = 0);

  CompiledPlan(const CompiledPlan&) = default;
  CompiledPlan& operator=(const CompiledPlan&) = default;

  const GlobalPlan& plan() const { return *plan_; }
  const MessageSchedule& schedule() const { return schedule_; }
  const NodeState& state(NodeId node) const;
  int node_count() const { return static_cast<int>(states_.size()); }
  uint32_t plan_epoch() const { return plan_epoch_; }

  StateTotals ComputeStateTotals() const;

 private:
  CompiledPlan(std::shared_ptr<const GlobalPlan> plan,
               MessageSchedule schedule, std::vector<NodeState> states,
               uint32_t plan_epoch)
      : plan_(std::move(plan)),
        schedule_(std::move(schedule)),
        states_(std::move(states)),
        plan_epoch_(plan_epoch) {}

  std::shared_ptr<const GlobalPlan> plan_;
  MessageSchedule schedule_;
  std::vector<NodeState> states_;
  uint32_t plan_epoch_ = 0;
};

}  // namespace m2m

#endif  // M2M_PLAN_NODE_TABLES_H_
