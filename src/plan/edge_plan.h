#ifndef M2M_PLAN_EDGE_PLAN_H_
#define M2M_PLAN_EDGE_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"

namespace m2m {

/// The transmission decision for one multicast-forest edge: which sources
/// travel raw and which destinations get a single partial aggregate record.
/// This is exactly a vertex cover of the edge's bipartite instance (paper
/// section 2.2): every (s ~e d) pair is served by raw s or by d's partial.
struct EdgePlan {
  std::vector<NodeId> raw_sources;       ///< Sorted ascending.
  std::vector<NodeId> agg_destinations;  ///< Sorted ascending.
  /// Total payload bytes of all units on this edge (excludes the per-message
  /// header, which depends on merging).
  int64_t payload_bytes = 0;
  /// Hash of the single-edge optimization inputs (the ~e relation, the unit
  /// byte sizes, and the tiebreak seed). Incremental updates reuse a stored
  /// solution iff the signature is unchanged (Corollary 1).
  uint64_t instance_signature = 0;

  int unit_count() const {
    return static_cast<int>(raw_sources.size() + agg_destinations.size());
  }
  bool TransmitsRaw(NodeId source) const;
  bool TransmitsAggregate(NodeId destination) const;

  friend bool operator==(const EdgePlan&, const EdgePlan&) = default;
};

}  // namespace m2m

#endif  // M2M_PLAN_EDGE_PLAN_H_
