#include "core/deployment.h"

#include <algorithm>

#include "common/check.h"

namespace m2m {

Deployment::Deployment(Topology topology, Workload workload,
                       SystemOptions system_options,
                       DeploymentOptions options)
    : topology_(std::move(topology)),
      workload_(std::move(workload)),
      system_options_(std::move(system_options)),
      options_(options),
      readings_(topology_.node_count(), SplitMix64(options.seed)),
      stability_(topology_, SplitMix64(options.seed ^ 0xfa11)),
      rng_(options.seed) {
  system_ = std::make_unique<System>(topology_, workload_, system_options_);
  executor_ = std::make_unique<PlanExecutor>(
      std::make_shared<CompiledPlan>(system_->compiled()),
      workload_.functions, EnergyModel{});
  base_station_ = PickBaseStation(topology_);
  if (options_.use_suppression) {
    executor_->InitializeState(readings_.values());
    suppression_primed_ = true;
  }
}

void Deployment::MaybeChurnWorkload() {
  if (!rng_.Bernoulli(options_.workload_churn_probability)) return;
  // Pick a random task and either remove one of its sources (a node died)
  // or add a new one (a node was deployed / re-tasked).
  const Task& task = workload_.tasks[rng_.UniformInt(workload_.tasks.size())];
  NodeId d = task.destination;
  bool remove = rng_.Bernoulli(0.5) && task.sources.size() > 2;
  Workload updated = workload_;
  if (remove) {
    NodeId victim = task.sources[rng_.UniformInt(task.sources.size())];
    updated = WithSourceRemoved(workload_, victim, d);
  } else {
    // First unused node, scanning from a random offset for variety.
    NodeId fresh = kInvalidNode;
    NodeId offset = static_cast<NodeId>(
        rng_.UniformInt(static_cast<uint64_t>(topology_.node_count())));
    for (int i = 0; i < topology_.node_count() && fresh == kInvalidNode;
         ++i) {
      NodeId candidate = (offset + i) % topology_.node_count();
      if (candidate != d &&
          std::find(task.sources.begin(), task.sources.end(), candidate) ==
              task.sources.end()) {
        fresh = candidate;
      }
    }
    if (fresh == kInvalidNode) return;  // Every node already feeds d.
    updated = WithSourceAdded(workload_, fresh, d,
                              rng_.UniformDouble(0.5, 1.5));
  }
  RebuildAfterChurn(updated);
}

void Deployment::RebuildAfterChurn(const Workload& updated) {
  auto new_system =
      std::make_unique<System>(topology_, updated, system_options_);
  // Account the incremental update (Corollary 1) and its dissemination.
  UpdateStats stats;
  GlobalPlan incremental =
      UpdatePlan(system_->plan(), new_system->forest_ptr(),
                 updated.functions, &stats);
  (void)incremental;  // Identical to new_system's plan; used for stats.
  DisseminationCost cost = ComputeIncrementalDissemination(
      system_->compiled(), workload_.functions, new_system->compiled(),
      updated.functions, new_system->paths(), base_station_, EnergyModel{});
  report_.workload_changes += 1;
  report_.edges_reoptimized += stats.edges_reoptimized;
  report_.edges_reused += stats.edges_reused;
  report_.nodes_redisseminated += cost.nodes_updated;
  report_.dissemination_energy_mj += cost.energy_mj;

  workload_ = updated;
  system_ = std::move(new_system);
  executor_ = std::make_unique<PlanExecutor>(
      std::make_shared<CompiledPlan>(system_->compiled()),
      workload_.functions, EnergyModel{});
  if (options_.use_suppression) {
    executor_->InitializeState(readings_.values());
    suppression_primed_ = true;
  }
}

RoundResult Deployment::Step() {
  MaybeChurnWorkload();
  std::vector<bool> changed =
      readings_.Advance(options_.change_probability);
  RoundResult result;
  if (options_.use_suppression) {
    M2M_CHECK(suppression_primed_);
    if (options_.suppression_epsilon > 0.0) {
      result = executor_->RunThresholdSuppressedRound(
          readings_.values(), options_.suppression_epsilon,
          options_.override_policy);
    } else {
      result = executor_->RunSuppressedRound(readings_.values(), changed,
                                             options_.override_policy);
    }
  } else {
    result = executor_->RunRound(readings_.values());
  }
  report_.rounds += 1;
  report_.round_energy_mj.Add(result.energy_mj);
  report_.round_messages.Add(static_cast<double>(result.messages));
  if (options_.sample_link_failures) {
    LinkOutcome links = LinkOutcome::Sample(topology_, stability_, rng_);
    FailureRoundResult failure = RunRoundWithFailures(
        system_->compiled(), workload_.functions, topology_, links,
        EnergyModel{});
    if (failure.contributions_total > 0) {
      report_.contribution_delivery_pct.Add(
          100.0 * static_cast<double>(failure.contributions_delivered) /
          static_cast<double>(failure.contributions_total));
    }
  }
  return result;
}

void Deployment::Run(int rounds) {
  M2M_CHECK_GT(rounds, 0);
  for (int r = 0; r < rounds; ++r) Step();
}

}  // namespace m2m
