#ifndef M2M_CORE_SYSTEM_H_
#define M2M_CORE_SYSTEM_H_

#include <memory>
#include <optional>

#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/milestones.h"
#include "routing/path_system.h"
#include "sim/executor.h"
#include "workload/workload.h"

namespace m2m {

/// Options for assembling a System.
struct SystemOptions {
  PlannerOptions planner;
  MergePolicy merge = MergePolicy::kGreedyMergePerEdge;
  /// Milestone predicate; nullopt = every node is a milestone (optimize on
  /// physical one-hop edges, the paper's default setting).
  std::optional<MilestoneSelector> milestones;
  /// Validate Theorem 1 consistency of the assembled plan (cheap; on by
  /// default).
  bool validate_consistency = true;
};

/// One-stop facade: topology + workload in, routed / optimized / compiled
/// plan out, with an executor factory for simulation. This is the API the
/// examples and experiment harnesses use.
class System {
 public:
  System(Topology topology, Workload workload, SystemOptions options = {});

  System(const System&) = default;
  System& operator=(const System&) = default;

  const Topology& topology() const { return *topology_; }
  const Workload& workload() const { return workload_; }
  const PathSystem& paths() const { return *paths_; }
  const MulticastForest& forest() const { return *forest_; }
  std::shared_ptr<const MulticastForest> forest_ptr() const {
    return forest_;
  }
  const GlobalPlan& plan() const { return *plan_; }
  const CompiledPlan& compiled() const { return *compiled_; }
  const SystemOptions& options() const { return options_; }

  /// Builds a (stateful) executor over the compiled plan.
  PlanExecutor MakeExecutor(const EnergyModel& energy = {}) const;

  /// Convenience: mean per-round radio energy (mJ) over `rounds` full
  /// recomputation rounds with random readings.
  double AverageRoundEnergyMj(int rounds, uint64_t seed,
                              const EnergyModel& energy = {}) const;

 private:
  std::shared_ptr<const Topology> topology_;
  Workload workload_;
  SystemOptions options_;
  std::shared_ptr<const PathSystem> paths_;
  std::shared_ptr<const MulticastForest> forest_;
  std::shared_ptr<const GlobalPlan> plan_;
  std::shared_ptr<const CompiledPlan> compiled_;
};

}  // namespace m2m

#endif  // M2M_CORE_SYSTEM_H_
