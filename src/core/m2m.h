#ifndef M2M_CORE_M2M_H_
#define M2M_CORE_M2M_H_

/// Umbrella header for the many-to-many aggregation library
/// (reproduction of Silberstein & Yang, "Many-to-Many Aggregation for
/// Sensor Networks", ICDE 2007).
///
/// Typical usage:
///
///   m2m::Topology topo = m2m::MakeGreatDuckIslandLike();
///   m2m::WorkloadSpec spec;
///   spec.destination_count = 14;
///   spec.sources_per_destination = 20;
///   m2m::Workload wl = m2m::GenerateWorkload(topo, spec);
///   m2m::System system(topo, wl);            // optimal plan
///   auto executor = system.MakeExecutor();
///   m2m::ReadingGenerator gen(topo.node_count(), /*seed=*/7);
///   gen.Advance(1.0);
///   m2m::RoundResult round = executor.RunRound(gen.values());

#include "agg/aggregate_function.h"
#include "core/deployment.h"
#include "core/system.h"
#include "plan/consistency.h"
#include "plan/dissemination.h"
#include "plan/messaging.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "mac/csma.h"
#include "mac/tdma_executor.h"
#include "plan/serialization.h"
#include "plan/tdma.h"
#include "routing/backbone.h"
#include "routing/milestones.h"
#include "routing/multicast.h"
#include "routing/path_system.h"
#include "runtime/network.h"
#include "runtime/node_runtime.h"
#include "sim/base_station.h"
#include "sim/energy_model.h"
#include "sim/executor.h"
#include "sim/failure.h"
#include "sim/flood.h"
#include "sim/readings.h"
#include "topology/generator.h"
#include "topology/topology.h"
#include "workload/multi_sensor.h"
#include "workload/workload.h"

#endif  // M2M_CORE_M2M_H_
