#ifndef M2M_CORE_DEPLOYMENT_H_
#define M2M_CORE_DEPLOYMENT_H_

#include <memory>

#include "common/stats.h"
#include "core/system.h"
#include "plan/dissemination.h"
#include "sim/base_station.h"
#include "sim/failure.h"
#include "sim/readings.h"

namespace m2m {

/// Mission-level configuration: what happens per timestep.
struct DeploymentOptions {
  /// Probability each node's reading changes per round.
  double change_probability = 0.2;
  /// Use temporal suppression (requires linear-delta functions); false =
  /// full recomputation every round.
  bool use_suppression = true;
  /// Suppression threshold: with epsilon > 0, a source transmits only when
  /// its reading drifted more than epsilon since its last transmission
  /// (bounded-error maintenance); 0 = exact suppression.
  double suppression_epsilon = 0.0;
  OverridePolicy override_policy = OverridePolicy::kConservative;
  /// Probability per round that the workload changes (a random source is
  /// added to or removed from a random task) — nodes dying or being
  /// deployed. Plan updates are incremental (Corollary 1) and their
  /// dissemination cost is charged.
  double workload_churn_probability = 0.0;
  /// Sample transient link failures each round and record delivery
  /// statistics (does not perturb the energy accounting).
  bool sample_link_failures = false;
  uint64_t seed = 1;
};

/// Aggregated mission statistics.
struct DeploymentReport {
  int rounds = 0;
  RunningStat round_energy_mj;
  RunningStat round_messages;
  int64_t workload_changes = 0;
  int64_t edges_reoptimized = 0;
  int64_t edges_reused = 0;
  int64_t nodes_redisseminated = 0;
  double dissemination_energy_mj = 0.0;
  RunningStat contribution_delivery_pct;  // When sampling failures.
};

/// A long-running many-to-many aggregation mission: readings drift, the
/// network computes control signals every round (with suppression), the
/// workload churns as nodes die or appear (plans update incrementally and
/// the deltas are disseminated), and link failures are sampled for delivery
/// statistics. This is the integration layer a deployment would actually
/// run; every round's aggregates remain verified end to end.
///
/// Note: after a workload change the executor's suppression state is
/// re-primed from current readings; the one resynchronization round a real
/// network would pay is not charged (the dissemination of the new tables
/// is).
class Deployment {
 public:
  Deployment(Topology topology, Workload workload,
             SystemOptions system_options = {},
             DeploymentOptions options = {});

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  /// Advances one timestep; returns that round's result.
  RoundResult Step();

  /// Runs `rounds` timesteps.
  void Run(int rounds);

  const DeploymentReport& report() const { return report_; }
  const Workload& workload() const { return workload_; }
  const System& system() const { return *system_; }
  const Topology& topology() const { return topology_; }

 private:
  void MaybeChurnWorkload();
  void RebuildAfterChurn(const Workload& updated);

  Topology topology_;
  Workload workload_;
  SystemOptions system_options_;
  DeploymentOptions options_;

  std::unique_ptr<System> system_;
  std::unique_ptr<PlanExecutor> executor_;
  ReadingGenerator readings_;
  LinkStabilityModel stability_;
  NodeId base_station_;
  Rng rng_;
  DeploymentReport report_;
  bool suppression_primed_ = false;
};

}  // namespace m2m

#endif  // M2M_CORE_DEPLOYMENT_H_
