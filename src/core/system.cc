#include "core/system.h"

#include "common/check.h"
#include "sim/readings.h"

namespace m2m {

System::System(Topology topology, Workload workload, SystemOptions options)
    : topology_(std::make_shared<const Topology>(std::move(topology))),
      workload_(std::move(workload)),
      options_(std::move(options)) {
  paths_ = std::make_shared<const PathSystem>(*topology_);
  const MilestoneSelector* milestones =
      options_.milestones.has_value() ? &*options_.milestones : nullptr;
  forest_ = std::make_shared<const MulticastForest>(*paths_, workload_.tasks,
                                                    milestones);
  plan_ = std::make_shared<const GlobalPlan>(
      BuildPlan(forest_, workload_.functions, options_.planner));
  if (options_.validate_consistency) {
    M2M_CHECK(ValidatePlanConsistency(*plan_))
        << "assembled plan violates Theorem 1 consistency";
  }
  compiled_ = std::make_shared<const CompiledPlan>(
      CompiledPlan::Compile(*plan_, workload_.functions, options_.merge));
}

PlanExecutor System::MakeExecutor(const EnergyModel& energy) const {
  return PlanExecutor(compiled_, workload_.functions, energy);
}

double System::AverageRoundEnergyMj(int rounds, uint64_t seed,
                                    const EnergyModel& energy) const {
  M2M_CHECK_GT(rounds, 0);
  PlanExecutor executor = MakeExecutor(energy);
  ReadingGenerator readings(topology_->node_count(), seed);
  double total = 0.0;
  for (int r = 0; r < rounds; ++r) {
    readings.Advance(1.0);
    total += executor.RunRound(readings.values()).energy_mj;
  }
  return total / rounds;
}

}  // namespace m2m
