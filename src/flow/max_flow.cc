#include "flow/max_flow.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace m2m {

MaxFlow::MaxFlow(int vertex_count) : vertex_count_(vertex_count) {
  M2M_CHECK_GT(vertex_count, 0);
  adjacency_.resize(vertex_count);
}

int MaxFlow::AddEdge(int from, int to, int64_t capacity) {
  M2M_CHECK(!solved_) << "graph is frozen after Solve()";
  M2M_CHECK(from >= 0 && from < vertex_count_);
  M2M_CHECK(to >= 0 && to < vertex_count_);
  M2M_CHECK_GE(capacity, 0);
  int forward_slot = static_cast<int>(adjacency_[from].size());
  int backward_slot = static_cast<int>(adjacency_[to].size());
  adjacency_[from].push_back(Edge{to, capacity, backward_slot, capacity});
  adjacency_[to].push_back(Edge{from, 0, forward_slot, 0});
  edge_refs_.emplace_back(from, forward_slot);
  return static_cast<int>(edge_refs_.size()) - 1;
}

bool MaxFlow::BuildLevels(int source, int sink) {
  level_.assign(vertex_count_, -1);
  std::queue<int> frontier;
  level_[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop();
    for (const Edge& e : adjacency_[u]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        frontier.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

int64_t MaxFlow::Augment(int vertex, int sink, int64_t limit) {
  if (vertex == sink || limit == 0) return limit;
  for (int& slot = next_edge_[vertex];
       slot < static_cast<int>(adjacency_[vertex].size()); ++slot) {
    Edge& e = adjacency_[vertex][slot];
    if (e.capacity <= 0 || level_[e.to] != level_[vertex] + 1) continue;
    int64_t pushed = Augment(e.to, sink, std::min(limit, e.capacity));
    if (pushed > 0) {
      e.capacity -= pushed;
      adjacency_[e.to][e.reverse].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

int64_t MaxFlow::Solve(int source, int sink) {
  M2M_CHECK(!solved_) << "Solve() may be called once";
  M2M_CHECK_NE(source, sink);
  solved_ = true;
  int64_t total = 0;
  while (BuildLevels(source, sink)) {
    next_edge_.assign(vertex_count_, 0);
    while (int64_t pushed = Augment(source, sink, kInfinity)) {
      total += pushed;
    }
  }
  return total;
}

int64_t MaxFlow::flow(int edge_id) const {
  M2M_CHECK(solved_);
  M2M_CHECK(edge_id >= 0 && edge_id < static_cast<int>(edge_refs_.size()));
  auto [vertex, slot] = edge_refs_[edge_id];
  const Edge& e = adjacency_[vertex][slot];
  return e.original_capacity - e.capacity;
}

std::vector<bool> MaxFlow::MinCutSide(int source) const {
  M2M_CHECK(solved_);
  std::vector<bool> reachable(vertex_count_, false);
  std::queue<int> frontier;
  reachable[source] = true;
  frontier.push(source);
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop();
    for (const Edge& e : adjacency_[u]) {
      if (e.capacity > 0 && !reachable[e.to]) {
        reachable[e.to] = true;
        frontier.push(e.to);
      }
    }
  }
  return reachable;
}

}  // namespace m2m
