#ifndef M2M_FLOW_MAX_FLOW_H_
#define M2M_FLOW_MAX_FLOW_H_

#include <cstdint>
#include <vector>

namespace m2m {

/// Dinic's maximum-flow algorithm over a directed graph with 64-bit integer
/// capacities. Vertices are dense ints assigned by the caller. Used to solve
/// minimum weighted bipartite vertex cover via max-flow/min-cut (the
/// "standard network flow techniques" of paper section 2.2).
class MaxFlow {
 public:
  explicit MaxFlow(int vertex_count);

  MaxFlow(const MaxFlow&) = default;
  MaxFlow& operator=(const MaxFlow&) = default;

  /// Adds a directed edge with the given capacity (>= 0); returns an edge id
  /// usable with `flow()` after solving.
  int AddEdge(int from, int to, int64_t capacity);

  /// Computes the maximum flow from `source` to `sink`. May be called once.
  int64_t Solve(int source, int sink);

  /// Flow carried by edge `edge_id` after Solve().
  int64_t flow(int edge_id) const;

  /// Vertices reachable from `source` in the residual graph after Solve();
  /// `MinCutSide()[v]` is true iff v is on the source side of the min cut.
  std::vector<bool> MinCutSide(int source) const;

  /// Effectively infinite capacity (never saturated by realistic weights,
  /// and safe against int64 overflow when summed).
  static constexpr int64_t kInfinity = int64_t{1} << 60;

 private:
  struct Edge {
    int to;
    int64_t capacity;  // Residual capacity.
    int reverse;       // Index of the reverse edge in adjacency_[to].
    int64_t original_capacity;
  };

  bool BuildLevels(int source, int sink);
  int64_t Augment(int vertex, int sink, int64_t limit);

  int vertex_count_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::pair<int, int>> edge_refs_;  // edge id -> (vertex, slot)
  std::vector<int> level_;
  std::vector<int> next_edge_;
  bool solved_ = false;
};

}  // namespace m2m

#endif  // M2M_FLOW_MAX_FLOW_H_
