#ifndef M2M_MAC_TDMA_EXECUTOR_H_
#define M2M_MAC_TDMA_EXECUTOR_H_

#include "obs/metrics.h"
#include "plan/tdma.h"
#include "sim/energy_model.h"

namespace m2m {

/// Outcome of executing one round under a TDMA schedule.
struct TdmaRoundResult {
  double energy_mj = 0.0;          ///< TX + RX + scheduled listening.
  double data_energy_mj = 0.0;     ///< TX + RX only.
  double listen_energy_mj = 0.0;   ///< Receive-mode slots while waiting.
  double completion_ms = 0.0;      ///< slot_count * slot duration.
  int64_t transmissions = 0;
  std::vector<double> node_energy_mj;
};

/// Executes one full round under the collision-free TDMA schedule: every
/// hop transmits in its assigned slot (fixed-length slots sized for the
/// largest frame), receivers keep their radios on only during their own
/// receive slots, and everyone else sleeps. Deterministic — no contention,
/// no retries — which is the entire point of compiling a transmission
/// schedule (paper section 3: "avoiding collisions and reducing node
/// listening time"). Compare against CsmaSimulator::RunRound for the
/// contention-based alternative.
///
/// When `metrics` is non-null the round records per-sender slot
/// transmissions (`tdma.transmissions`), transmitted payload bytes
/// (`tdma.payload_bytes`), and the schedule length (`tdma.slot_count`).
TdmaRoundResult ExecuteTdmaRound(const TdmaSchedule& schedule,
                                 const CompiledPlan& compiled,
                                 const Topology& topology,
                                 const EnergyModel& energy,
                                 double bit_rate_bps = 38400.0,
                                 obs::MetricsRegistry* metrics = nullptr);

}  // namespace m2m

#endif  // M2M_MAC_TDMA_EXECUTOR_H_
