#include "mac/csma.h"

#include <algorithm>
#include <queue>
#include <set>

#include "common/check.h"

namespace m2m {

namespace {

// Ack turnaround between a reception and the next event that depends on it.
constexpr double kTurnaroundMs = 0.5;

struct Event {
  double time = 0.0;
  enum class Kind { kTryStart, kEnd } kind = Kind::kTryStart;
  int message = -1;
  int transmission = -1;
  int64_t seq = 0;  // Tie-breaker for determinism.

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct Transmission {
  NodeId sender = kInvalidNode;
  NodeId receiver = kInvalidNode;
  int message = -1;
  double end_time = 0.0;
  bool corrupted = false;
  bool active = false;
};

struct MessageState {
  int deps_remaining = 0;
  std::vector<int> dependents;
  int hop = 0;           // Next hop index to transmit.
  int retries = 0;       // Collision retries on the current hop.
  bool failed = false;
  bool delivered = false;
};

}  // namespace

CsmaSimulator::CsmaSimulator(std::shared_ptr<const CompiledPlan> compiled,
                             const Topology& topology, EnergyModel energy,
                             CsmaConfig config)
    : compiled_(std::move(compiled)),
      topology_(&topology),
      energy_(energy),
      config_(config) {
  M2M_CHECK(compiled_ != nullptr);
  const MessageSchedule& schedule = compiled_->schedule();
  const int message_count = static_cast<int>(schedule.messages().size());
  message_deps_.resize(message_count);
  message_payload_.assign(message_count, 0);
  std::vector<std::set<int>> deps(message_count);
  for (size_t v = 0; v < schedule.units().size(); ++v) {
    int mv = schedule.message_of_unit(static_cast<int>(v));
    message_payload_[mv] += schedule.units()[v].unit_bytes;
    for (int u : schedule.wait_for()[v]) {
      int mu = schedule.message_of_unit(u);
      if (mu != mv) deps[mv].insert(mu);
    }
  }
  for (int m = 0; m < message_count; ++m) {
    message_deps_[m].assign(deps[m].begin(), deps[m].end());
  }
}

MacRoundResult CsmaSimulator::RunRound(uint64_t seed) const {
  const MessageSchedule& schedule = compiled_->schedule();
  const MulticastForest& forest = compiled_->plan().forest();
  const int message_count = static_cast<int>(schedule.messages().size());
  Rng rng(seed);

  MacRoundResult result;
  result.node_energy_mj.assign(topology_->node_count(), 0.0);
  auto charge = [&](NodeId node, double uj) {
    result.node_energy_mj[node] += uj / 1000.0;
    result.energy_mj += uj / 1000.0;
  };

  std::vector<MessageState> states(message_count);
  for (int m = 0; m < message_count; ++m) {
    states[m].deps_remaining = static_cast<int>(message_deps_[m].size());
    for (int dep : message_deps_[m]) states[dep].dependents.push_back(m);
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  int64_t next_seq = 0;
  auto schedule_event = [&](double time, Event::Kind kind, int message,
                            int transmission) {
    queue.push(Event{time, kind, message, transmission, next_seq++});
  };

  // Desynchronized kickoff for dependency-free messages.
  for (int m = 0; m < message_count; ++m) {
    if (states[m].deps_remaining == 0) {
      schedule_event(rng.UniformDouble(0.0, 5.0), Event::Kind::kTryStart, m,
                     -1);
    }
  }

  std::vector<Transmission> transmissions;
  auto segment_of = [&](int m) -> const std::vector<NodeId>& {
    return forest.edges()[schedule.messages()[m].edge_index].segment;
  };
  auto backoff = [&](int retries) {
    double window = std::min(config_.backoff_init_ms * (1 << std::min(retries, 10)),
                             config_.backoff_max_ms);
    return rng.UniformDouble(0.0, window);
  };

  double clock = 0.0;
  while (!queue.empty()) {
    Event event = queue.top();
    queue.pop();
    clock = event.time;
    M2M_CHECK_LT(clock, 1e7) << "MAC simulation failed to converge";

    if (event.kind == Event::Kind::kTryStart) {
      MessageState& state = states[event.message];
      if (state.failed) continue;
      const std::vector<NodeId>& segment = segment_of(event.message);
      NodeId sender = segment[state.hop];
      NodeId receiver = segment[state.hop + 1];
      // Carrier sense: defer while any active transmitter is within range
      // of the sender (or the sender/receiver is itself busy sending).
      bool busy = false;
      for (const Transmission& t : transmissions) {
        if (!t.active) continue;
        if (t.sender == sender || t.sender == receiver ||
            topology_->AreNeighbors(t.sender, sender)) {
          busy = true;
          break;
        }
      }
      if (busy) {
        ++result.busy_backoffs;
        schedule_event(clock + backoff(state.retries) + 0.1,
                       Event::Kind::kTryStart, event.message, -1);
        continue;
      }
      // Start transmitting.
      double duration =
          config_.BytesToMs(energy_.header_bytes +
                            message_payload_[event.message]);
      int id = static_cast<int>(transmissions.size());
      Transmission t;
      t.sender = sender;
      t.receiver = receiver;
      t.message = event.message;
      t.end_time = clock + duration;
      t.active = true;
      // Protocol interference: corrupt any active reception in range of the
      // new sender, and the new reception if any active sender is in range
      // of its receiver.
      for (Transmission& other : transmissions) {
        if (!other.active) continue;
        if (other.receiver == sender ||
            topology_->AreNeighbors(other.receiver, sender)) {
          other.corrupted = true;
        }
        if (other.sender == receiver ||
            topology_->AreNeighbors(other.sender, receiver)) {
          t.corrupted = true;
        }
      }
      transmissions.push_back(t);
      ++result.attempts;
      charge(sender, energy_.TxUj(message_payload_[event.message]));
      schedule_event(t.end_time, Event::Kind::kEnd, event.message, id);
      continue;
    }

    // Event::Kind::kEnd
    Transmission& t = transmissions[event.transmission];
    t.active = false;
    MessageState& state = states[event.message];
    // The receiver listened for the whole frame either way.
    charge(t.receiver, energy_.RxUj(message_payload_[event.message]));
    if (t.corrupted) {
      ++result.collisions;
      if (++state.retries > config_.max_retries) {
        state.failed = true;
        result.hops_failed +=
            static_cast<int64_t>(segment_of(event.message).size()) - 1 -
            state.hop;
        continue;
      }
      schedule_event(clock + backoff(state.retries), Event::Kind::kTryStart,
                     event.message, -1);
      continue;
    }
    // Successful hop: link-layer acknowledgment both ways.
    charge(t.receiver, energy_.TxUj(config_.ack_payload_bytes));
    charge(t.sender, energy_.RxUj(config_.ack_payload_bytes));
    ++result.hops_delivered;
    state.retries = 0;
    state.hop += 1;
    result.completion_ms = std::max(result.completion_ms, clock);
    if (state.hop + 1 < static_cast<int>(segment_of(event.message).size())) {
      schedule_event(clock + kTurnaroundMs, Event::Kind::kTryStart,
                     event.message, -1);
      continue;
    }
    // Message fully delivered: release dependents.
    state.delivered = true;
    for (int dependent : states[event.message].dependents) {
      if (--states[dependent].deps_remaining == 0 &&
          !states[dependent].failed) {
        schedule_event(clock + kTurnaroundMs + rng.UniformDouble(0.0, 2.0),
                       Event::Kind::kTryStart, dependent, -1);
      }
    }
  }
  return result;
}

}  // namespace m2m
