#ifndef M2M_MAC_CSMA_H_
#define M2M_MAC_CSMA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "plan/node_tables.h"
#include "sim/energy_model.h"
#include "topology/topology.h"

namespace m2m {

/// Parameters of the CSMA/CA-style medium-access layer (defaults match a
/// Mica2-class CC1000 radio at 38.4 kbps).
struct CsmaConfig {
  double bit_rate_bps = 38400.0;
  /// Initial backoff window; doubles per retry up to the maximum.
  double backoff_init_ms = 2.0;
  double backoff_max_ms = 64.0;
  /// Retransmissions before a hop is abandoned.
  int max_retries = 10;
  /// Link-layer acknowledgment payload (header is added on top).
  int ack_payload_bytes = 2;
  /// Carrier-sense and interference range equal the radio range (the
  /// protocol interference model).

  double BytesToMs(int bytes) const {
    return bytes * 8.0 * 1000.0 / bit_rate_bps;
  }
};

/// Outcome of one round executed through the MAC simulator.
struct MacRoundResult {
  double energy_mj = 0.0;
  /// Wall-clock time until the last delivery (the round's latency).
  double completion_ms = 0.0;
  int64_t attempts = 0;     ///< Data transmissions started (incl. retries).
  int64_t collisions = 0;   ///< Receptions corrupted by interference.
  int64_t busy_backoffs = 0;  ///< Attempts deferred by carrier sense.
  int64_t hops_delivered = 0;
  int64_t hops_failed = 0;  ///< Hops abandoned after max_retries.
  std::vector<double> node_energy_mj;
};

/// Discrete-event CSMA simulation of one full round of a compiled plan:
/// every scheduled message traverses its physical segment hop by hop; a hop
/// may start once the message's wait-for dependencies are delivered and the
/// previous hop is done; senders carrier-sense, back off on a busy medium,
/// collide under the protocol interference model, and retransmit on missing
/// acknowledgments. Energy covers every data attempt, successful
/// receptions, and acknowledgments in both directions.
///
/// This validates the analytic round executor: with the same plan, MAC
/// energy is the analytic energy plus collision/retry/ack overhead, and the
/// completion time exposes the latency structure Theorem 2's wait-for DAG
/// induces.
class CsmaSimulator {
 public:
  CsmaSimulator(std::shared_ptr<const CompiledPlan> compiled,
                const Topology& topology, EnergyModel energy,
                CsmaConfig config = {});

  CsmaSimulator(const CsmaSimulator&) = default;
  CsmaSimulator& operator=(const CsmaSimulator&) = default;

  /// Runs one round; deterministic in `seed`.
  MacRoundResult RunRound(uint64_t seed) const;

 private:
  std::shared_ptr<const CompiledPlan> compiled_;
  const Topology* topology_;
  EnergyModel energy_;
  CsmaConfig config_;

  /// message id -> ids of messages it waits for.
  std::vector<std::vector<int>> message_deps_;
  /// message id -> payload bytes.
  std::vector<int> message_payload_;
};

}  // namespace m2m

#endif  // M2M_MAC_CSMA_H_
