#include "mac/tdma_executor.h"

#include <algorithm>

#include "common/check.h"

namespace m2m {

TdmaRoundResult ExecuteTdmaRound(const TdmaSchedule& schedule,
                                 const CompiledPlan& compiled,
                                 const Topology& topology,
                                 const EnergyModel& energy,
                                 double bit_rate_bps,
                                 obs::MetricsRegistry* metrics) {
  M2M_CHECK(ValidateTdmaSchedule(schedule, compiled, topology));
  obs::MetricHandle tx_handle, bytes_handle, slots_handle;
  if (metrics != nullptr) {
    tx_handle = metrics->Counter("tdma.transmissions");
    bytes_handle = metrics->Counter("tdma.payload_bytes");
    slots_handle = metrics->Counter("tdma.slot_count");
  }
  const MessageSchedule& messages = compiled.schedule();

  // Fixed slot length: the largest frame on the air.
  int max_payload = 0;
  std::vector<int> payload_of(messages.messages().size(), 0);
  for (size_t m = 0; m < messages.messages().size(); ++m) {
    for (int u : messages.messages()[m].unit_ids) {
      payload_of[m] += messages.units()[u].unit_bytes;
    }
    max_payload = std::max(max_payload, payload_of[m]);
  }
  const double slot_ms =
      (energy.header_bytes + max_payload) * 8.0 * 1000.0 / bit_rate_bps;

  TdmaRoundResult result;
  result.node_energy_mj.assign(topology.node_count(), 0.0);
  auto charge = [&](NodeId node, double uj) {
    result.node_energy_mj[node] += uj / 1000.0;
  };

  for (const TdmaAssignment& assignment : schedule.assignments) {
    int payload = payload_of[assignment.message];
    charge(assignment.sender, energy.TxUj(payload));
    // The receiver's radio is on for the whole slot; the frame occupies
    // part of it and idle listening covers the rest.
    double frame_ms =
        (energy.header_bytes + payload) * 8.0 * 1000.0 / bit_rate_bps;
    charge(assignment.receiver, energy.RxUj(payload));
    double idle_uj =
        std::max(0.0, slot_ms - frame_ms) * energy.idle_listen_uj_per_ms;
    charge(assignment.receiver, idle_uj);
    result.listen_energy_mj += idle_uj / 1000.0;
    result.data_energy_mj +=
        (energy.TxUj(payload) + energy.RxUj(payload)) / 1000.0;
    result.transmissions += 1;
    if (metrics != nullptr) {
      metrics->AddNode(tx_handle, assignment.sender, 1);
      metrics->AddNode(bytes_handle, assignment.sender, payload);
    }
  }
  if (metrics != nullptr) {
    metrics->Add(slots_handle, schedule.slot_count);
  }
  result.completion_ms = schedule.slot_count * slot_ms;
  for (double e : result.node_energy_mj) result.energy_mj += e;
  return result;
}

}  // namespace m2m
