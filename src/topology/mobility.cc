#include "topology/mobility.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

namespace {

// Same 21-bit id packing as the fault schedule's link keys.
constexpr int kIdBits = 21;

uint64_t LinkKey(NodeId a, NodeId b) {
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << kIdBits) | static_cast<uint64_t>(hi);
}

// Dedicated stream label: mobility draws must never share a stream with
// fault schedules (seed ^ 0xfa017) or any other seeded component.
constexpr uint64_t kMobilityStream = 0x6d0b113700ULL;

Area MovementArea(const MobilityOptions& options,
                  const std::vector<Point>& positions) {
  if (options.area.width > 0.0 && options.area.height > 0.0) {
    return options.area;
  }
  Area area;
  for (const Point& p : positions) {
    area.width = std::max(area.width, p.x);
    area.height = std::max(area.height, p.y);
  }
  return area;
}

// Advances a drifting node one round: jitter the heading, step, reflect
// component-wise off the area bounds.
void DriftStep(Point& position, double& heading, double speed,
               double turn_sigma, const Area& area, Rng& rng) {
  heading += rng.Gaussian() * turn_sigma;
  double vx = std::cos(heading) * speed;
  double vy = std::sin(heading) * speed;
  double x = position.x + vx;
  double y = position.y + vy;
  if (x < 0.0 || x > area.width) {
    vx = -vx;
    x = position.x + vx;
  }
  if (y < 0.0 || y > area.height) {
    vy = -vy;
    y = position.y + vy;
  }
  position = area.Clamp(Point{x, y});
  heading = std::atan2(vy, vx);
}

}  // namespace

std::string ToString(MobilityModel model) {
  switch (model) {
    case MobilityModel::kStatic:
      return "static";
    case MobilityModel::kRandomWaypoint:
      return "random-waypoint";
    case MobilityModel::kVelocityDrift:
      return "velocity-drift";
  }
  return "unknown";
}

MobilityTrace MobilityTrace::Generate(const Topology& topology,
                                      const MobilityOptions& options) {
  M2M_CHECK_GE(options.rounds, 0);
  M2M_CHECK_GE(options.speed_m_per_round, 0.0);
  const int n = topology.node_count();

  std::vector<bool> anchored(n, false);
  for (NodeId a : options.anchored) {
    M2M_CHECK(a >= 0 && a < n);
    anchored[a] = true;
  }

  std::vector<std::vector<Point>> positions;
  positions.reserve(static_cast<size_t>(options.rounds) + 1);
  positions.push_back(topology.positions());
  const Area area = MovementArea(options, positions[0]);

  const bool moves = options.model != MobilityModel::kStatic &&
                     options.speed_m_per_round > 0.0;
  if (moves) {
    // Per-node forked streams: each node's movement is deterministic in
    // (seed, node) alone, independent of every other node's draws.
    Rng root(SplitMix64(options.seed ^ kMobilityStream));
    struct NodeState {
      Rng rng;
      Point target;      // Waypoint target.
      int pause_left = 0;
      double heading = 0.0;  // Drift heading.
    };
    std::vector<NodeState> states;
    states.reserve(static_cast<size_t>(n));
    for (NodeId node = 0; node < n; ++node) {
      NodeState state{root.Fork(static_cast<uint64_t>(node) + 1),
                      Point{}, 0, 0.0};
      if (options.model == MobilityModel::kRandomWaypoint) {
        state.target = Point{state.rng.UniformDouble(0.0, area.width),
                             state.rng.UniformDouble(0.0, area.height)};
      } else {
        state.heading = state.rng.UniformDouble(0.0, 2.0 * 3.14159265358979);
      }
      states.push_back(std::move(state));
    }

    for (int round = 1; round <= options.rounds; ++round) {
      std::vector<Point> next = positions.back();
      for (NodeId node = 0; node < n; ++node) {
        if (anchored[node]) continue;
        NodeState& state = states[node];
        if (options.model == MobilityModel::kRandomWaypoint) {
          if (state.pause_left > 0) {
            --state.pause_left;
            continue;
          }
          Point& p = next[node];
          double dx = state.target.x - p.x;
          double dy = state.target.y - p.y;
          double dist = std::sqrt(dx * dx + dy * dy);
          if (dist <= options.speed_m_per_round) {
            p = state.target;
            state.pause_left = options.pause_rounds;
            state.target =
                Point{state.rng.UniformDouble(0.0, area.width),
                      state.rng.UniformDouble(0.0, area.height)};
          } else {
            p.x += dx / dist * options.speed_m_per_round;
            p.y += dy / dist * options.speed_m_per_round;
          }
        } else {
          DriftStep(next[node], state.heading, options.speed_m_per_round,
                    options.turn_sigma_rad, area, state.rng);
        }
      }
      positions.push_back(std::move(next));
    }
  } else {
    for (int round = 1; round <= options.rounds; ++round) {
      positions.push_back(positions[0]);
    }
  }

  MobilityTrace trace;
  trace.positions_ = std::move(positions);
  trace.IndexLinkStates(topology);
  return trace;
}

MobilityTrace::MobilityTrace(
    const Topology& topology,
    std::vector<std::vector<Point>> positions_per_round) {
  M2M_CHECK(!positions_per_round.empty());
  for (const std::vector<Point>& round_positions : positions_per_round) {
    M2M_CHECK_EQ(static_cast<int>(round_positions.size()),
                 topology.node_count());
  }
  positions_ = std::move(positions_per_round);
  IndexLinkStates(topology);
}

void MobilityTrace::IndexLinkStates(const Topology& topology) {
  const double range_sq =
      topology.radio_range_m() * topology.radio_range_m();
  std::vector<std::pair<NodeId, NodeId>> links;
  for (NodeId a = 0; a < topology.node_count(); ++a) {
    for (NodeId b : topology.neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }

  down_.clear();
  down_.reserve(positions_.size());
  events_.clear();
  for (size_t round = 0; round < positions_.size(); ++round) {
    std::unordered_set<uint64_t> down;
    const std::vector<Point>& at = positions_[round];
    for (const auto& [a, b] : links) {
      const bool up = DistanceSquared(at[a], at[b]) <= range_sq;
      if (!up) down.insert(LinkKey(a, b));
      if (round == 0) continue;
      const bool was_up = !down_[round - 1].contains(LinkKey(a, b));
      if (up == was_up) continue;
      events_.push_back(
          LinkEvent{static_cast<int>(round), std::min(a, b),
                    std::max(a, b), up});
      if (up) {
        ++total_makes_;
      } else {
        ++total_breaks_;
      }
    }
    down_.push_back(std::move(down));
  }
}

const std::vector<Point>& MobilityTrace::PositionsAt(int round) const {
  const int clamped = std::clamp(round, 0, rounds());
  return positions_[static_cast<size_t>(clamped)];
}

bool MobilityTrace::LinkUpAt(int round, NodeId a, NodeId b) const {
  const int clamped = std::clamp(round, 0, rounds());
  return !down_[static_cast<size_t>(clamped)].contains(LinkKey(a, b));
}

std::vector<std::pair<NodeId, NodeId>> MobilityTrace::DownLinksAt(
    int round) const {
  const int clamped = std::clamp(round, 0, rounds());
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(down_[static_cast<size_t>(clamped)].size());
  for (uint64_t key : down_[static_cast<size_t>(clamped)]) {
    out.emplace_back(static_cast<NodeId>(key >> 21),
                     static_cast<NodeId>(key & ((1u << 21) - 1)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

int MobilityTrace::down_link_count(int round) const {
  const int clamped = std::clamp(round, 0, rounds());
  return static_cast<int>(down_[static_cast<size_t>(clamped)].size());
}

std::vector<LinkEvent> MobilityTrace::EventsAt(int round) const {
  std::vector<LinkEvent> out;
  for (const LinkEvent& event : events_) {
    if (event.round == round) out.push_back(event);
  }
  return out;
}

std::string MobilityTrace::Describe() const {
  std::ostringstream os;
  os << "mobility-trace rounds=" << rounds() << " breaks=" << total_breaks_
     << " makes=" << total_makes_ << "\n";
  for (const LinkEvent& event : events_) {
    os << "  r" << event.round << " " << (event.up ? "make" : "break")
       << " " << event.a << "-" << event.b << "\n";
  }
  return os.str();
}

}  // namespace m2m
