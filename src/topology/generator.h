#ifndef M2M_TOPOLOGY_GENERATOR_H_
#define M2M_TOPOLOGY_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "geom/point.h"
#include "topology/topology.h"

namespace m2m {

/// Default Mica2 radio range used throughout the paper's evaluation.
inline constexpr double kDefaultRadioRangeM = 50.0;

/// Builds the deterministic Great-Duck-Island-like deployment used as the
/// paper's default network: 68 nodes in a 106 x 203 m^2 area, radio range
/// 50 m. The 2003 GDI coordinates are no longer published, so we synthesize a
/// layout with the same node count, area, and clustered character (burrow
/// clusters along the island), then repair connectivity if needed.
/// Deterministic for a given seed.
Topology MakeGreatDuckIslandLike(uint64_t seed = 2003);

/// `count` nodes placed uniformly at random in `area`; connectivity is
/// repaired by pulling stranded components toward the largest one.
Topology MakeUniformRandom(int count, Area area, double radio_range_m,
                           uint64_t seed);

/// Regular grid with `cols * rows` nodes and `spacing_m` between neighbors.
Topology MakeGrid(int cols, int rows, double spacing_m, double radio_range_m);

/// Clustered deployment: `cluster_count` cluster centers placed uniformly,
/// nodes assigned round-robin and scattered around their center with the
/// given standard deviation. Connectivity repaired.
Topology MakeClustered(int count, int cluster_count, Area area,
                       double cluster_stddev_m, double radio_range_m,
                       uint64_t seed);

/// The increasing-size series for the scaling experiment (paper Figure 6):
/// node counts in `node_counts`, with the area scaled so node density (and
/// hence average degree) stays approximately constant relative to the
/// 68-node / 106x203 m^2 baseline.
std::vector<Topology> MakeScalingSeries(const std::vector<int>& node_counts,
                                        uint64_t seed);

}  // namespace m2m

#endif  // M2M_TOPOLOGY_GENERATOR_H_
