#include "topology/generator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/check.h"

namespace m2m {

namespace {

// Radio-range-sized grid over node positions: every in-range pair sits in
// adjacent (3x3) cells, so proximity scans cost O(local density) per node
// instead of O(n). Mirrors the bucketing in Topology's constructor.
class CellGrid {
 public:
  CellGrid(const std::vector<Point>& positions, double range_m)
      : positions_(positions), range_m_(range_m) {
    min_x_ = positions[0].x;
    min_y_ = positions[0].y;
    for (const Point& p : positions) {
      min_x_ = std::min(min_x_, p.x);
      min_y_ = std::min(min_y_, p.y);
    }
    buckets_.reserve(positions.size());
    for (int i = 0; i < static_cast<int>(positions.size()); ++i) {
      auto [cx, cy] = CellOf(positions[i]);
      buckets_[Key(cx, cy)].push_back(i);
    }
  }

  // Invokes fn(v) for every node v in the 3x3 cell neighborhood of `p`
  // (a superset of the nodes within range of p; callers distance-check).
  template <typename Fn>
  void ForNeighborhood(const Point& p, Fn&& fn) const {
    auto [cx, cy] = CellOf(p);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = buckets_.find(Key(cx + dx, cy + dy));
        if (it == buckets_.end()) continue;
        for (int v : it->second) fn(v);
      }
    }
  }

 private:
  static int64_t Key(int64_t cx, int64_t cy) {
    return (cx << 32) ^ static_cast<uint32_t>(cy);
  }
  std::pair<int64_t, int64_t> CellOf(const Point& p) const {
    return {static_cast<int64_t>((p.x - min_x_) / range_m_),
            static_cast<int64_t>((p.y - min_y_) / range_m_)};
  }

  const std::vector<Point>& positions_;
  double range_m_;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::unordered_map<int64_t, std::vector<int>> buckets_;
};

// Labels connected components of the disk graph over `positions`; returns
// component id per node and stores the size of the largest component.
// Component membership and ids are order-independent facts of the graph
// (starts scan ascending node ids), so the cell-grid traversal labels
// exactly as the all-pairs version did.
std::vector<int> ComponentsOf(const std::vector<Point>& positions,
                              double range_m, int* largest_component) {
  const int n = static_cast<int>(positions.size());
  const double range_sq = range_m * range_m;
  const CellGrid grid(positions, range_m);
  std::vector<int> component(n, -1);
  int next_component = 0;
  int best_size = 0;
  int best_id = -1;
  for (int start = 0; start < n; ++start) {
    if (component[start] >= 0) continue;
    int size = 0;
    std::queue<int> frontier;
    component[start] = next_component;
    frontier.push(start);
    while (!frontier.empty()) {
      int u = frontier.front();
      frontier.pop();
      ++size;
      grid.ForNeighborhood(positions[u], [&](int v) {
        if (component[v] < 0 &&
            DistanceSquared(positions[u], positions[v]) <= range_sq) {
          component[v] = next_component;
          frontier.push(v);
        }
      });
    }
    if (size > best_size) {
      best_size = size;
      best_id = next_component;
    }
    ++next_component;
  }
  *largest_component = best_id;
  return component;
}

// Moves stranded nodes until the disk graph is connected: repeatedly takes
// the node outside the largest component that is closest to it and drops the
// node just inside radio range of its nearest in-component node.
void RepairConnectivity(std::vector<Point>& positions, double range_m) {
  const int n = static_cast<int>(positions.size());
  for (int guard = 0; guard < 4 * n; ++guard) {
    int largest = -1;
    std::vector<int> component = ComponentsOf(positions, range_m, &largest);
    bool connected =
        std::all_of(component.begin(), component.end(),
                    [largest](int c) { return c == largest; });
    if (connected) return;
    // Closest (inside, outside) pair.
    double best_dist_sq = -1.0;
    int best_in = -1;
    int best_out = -1;
    for (int a = 0; a < n; ++a) {
      if (component[a] != largest) continue;
      for (int b = 0; b < n; ++b) {
        if (component[b] == largest) continue;
        double d = DistanceSquared(positions[a], positions[b]);
        if (best_dist_sq < 0.0 || d < best_dist_sq) {
          best_dist_sq = d;
          best_in = a;
          best_out = b;
        }
      }
    }
    M2M_CHECK_GE(best_in, 0);
    // Place the stranded node at 90% of radio range from its anchor, along
    // the original direction (keeps the deployment shape plausible).
    Point anchor = positions[best_in];
    Point stray = positions[best_out];
    double dist = Distance(anchor, stray);
    double scale = dist < 1e-9 ? 0.0 : 0.9 * range_m / dist;
    positions[best_out] = Point{anchor.x + (stray.x - anchor.x) * scale,
                                anchor.y + (stray.y - anchor.y) * scale};
  }
  M2M_CHECK(false) << "connectivity repair did not converge";
}

}  // namespace

Topology MakeGreatDuckIslandLike(uint64_t seed) {
  // 68 nodes in 106 x 203 m^2 (paper section 4). The real deployment placed
  // motes in petrel burrows grouped in patches; we mimic that with several
  // elongated clusters along the long axis plus a few scattered motes.
  const Area area{106.0, 203.0};
  const int total_nodes = 68;
  Rng rng(seed);

  struct Cluster {
    Point center;
    double stddev;
    int count;
  };
  const std::vector<Cluster> clusters = {
      {{30.0, 25.0}, 14.0, 12}, {{75.0, 55.0}, 13.0, 11},
      {{40.0, 95.0}, 15.0, 13}, {{80.0, 140.0}, 13.0, 11},
      {{35.0, 170.0}, 14.0, 11},
  };
  std::vector<Point> positions;
  positions.reserve(total_nodes);
  for (const Cluster& c : clusters) {
    for (int i = 0; i < c.count; ++i) {
      Point p{c.center.x + rng.Gaussian() * c.stddev,
              c.center.y + rng.Gaussian() * c.stddev};
      positions.push_back(area.Clamp(p));
    }
  }
  // Scattered singles filling the remainder.
  while (static_cast<int>(positions.size()) < total_nodes) {
    positions.push_back(Point{rng.UniformDouble(0.0, area.width),
                              rng.UniformDouble(0.0, area.height)});
  }
  RepairConnectivity(positions, kDefaultRadioRangeM);
  Topology topo(std::move(positions), kDefaultRadioRangeM);
  M2M_CHECK(topo.IsConnected());
  return topo;
}

Topology MakeUniformRandom(int count, Area area, double radio_range_m,
                           uint64_t seed) {
  M2M_CHECK_GT(count, 0);
  Rng rng(seed);
  std::vector<Point> positions;
  positions.reserve(count);
  for (int i = 0; i < count; ++i) {
    positions.push_back(Point{rng.UniformDouble(0.0, area.width),
                              rng.UniformDouble(0.0, area.height)});
  }
  RepairConnectivity(positions, radio_range_m);
  Topology topo(std::move(positions), radio_range_m);
  M2M_CHECK(topo.IsConnected());
  return topo;
}

Topology MakeGrid(int cols, int rows, double spacing_m,
                  double radio_range_m) {
  M2M_CHECK_GT(cols, 0);
  M2M_CHECK_GT(rows, 0);
  std::vector<Point> positions;
  positions.reserve(static_cast<size_t>(cols) * rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      positions.push_back(Point{c * spacing_m, r * spacing_m});
    }
  }
  return Topology(std::move(positions), radio_range_m);
}

Topology MakeClustered(int count, int cluster_count, Area area,
                       double cluster_stddev_m, double radio_range_m,
                       uint64_t seed) {
  M2M_CHECK_GT(count, 0);
  M2M_CHECK_GT(cluster_count, 0);
  Rng rng(seed);
  std::vector<Point> centers;
  centers.reserve(cluster_count);
  for (int i = 0; i < cluster_count; ++i) {
    centers.push_back(Point{rng.UniformDouble(0.0, area.width),
                            rng.UniformDouble(0.0, area.height)});
  }
  std::vector<Point> positions;
  positions.reserve(count);
  for (int i = 0; i < count; ++i) {
    const Point& c = centers[i % cluster_count];
    Point p{c.x + rng.Gaussian() * cluster_stddev_m,
            c.y + rng.Gaussian() * cluster_stddev_m};
    positions.push_back(area.Clamp(p));
  }
  RepairConnectivity(positions, radio_range_m);
  Topology topo(std::move(positions), radio_range_m);
  M2M_CHECK(topo.IsConnected());
  return topo;
}

std::vector<Topology> MakeScalingSeries(const std::vector<int>& node_counts,
                                        uint64_t seed) {
  // Baseline density: 68 nodes per 106 x 203 m^2, aspect ratio preserved.
  const double base_density = 68.0 / (106.0 * 203.0);
  const double aspect = 203.0 / 106.0;
  std::vector<Topology> series;
  series.reserve(node_counts.size());
  for (size_t i = 0; i < node_counts.size(); ++i) {
    int count = node_counts[i];
    double size = count / base_density;
    double width = std::sqrt(size / aspect);
    Area area{width, width * aspect};
    series.push_back(MakeUniformRandom(count, area, kDefaultRadioRangeM,
                                       SplitMix64(seed + i)));
  }
  return series;
}

}  // namespace m2m
