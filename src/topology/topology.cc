#include "topology/topology.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace m2m {

Topology::Topology(std::vector<Point> positions, double radio_range_m)
    : positions_(std::move(positions)), radio_range_m_(radio_range_m) {
  M2M_CHECK_GT(radio_range_m_, 0.0);
  M2M_CHECK(!positions_.empty());
  const int n = node_count();
  adjacency_.resize(n);
  const double range_sq = radio_range_m_ * radio_range_m_;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (DistanceSquared(positions_[a], positions_[b]) <= range_sq) {
        adjacency_[a].push_back(b);
        adjacency_[b].push_back(a);
        ++link_count_;
      }
    }
  }
  // Neighbor lists come out sorted by construction order, but keep the
  // invariant explicit for downstream deterministic iteration.
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

Topology Topology::WithFailures(
    const Topology& base,
    const std::vector<std::pair<NodeId, NodeId>>& failed_links,
    const std::vector<NodeId>& dead_nodes) {
  Topology masked;
  masked.positions_ = base.positions_;
  masked.radio_range_m_ = base.radio_range_m_;
  std::vector<bool> dead(base.node_count(), false);
  for (NodeId n : dead_nodes) {
    base.CheckNode(n);
    dead[n] = true;
  }
  auto link_failed = [&](NodeId a, NodeId b) {
    for (const auto& [x, y] : failed_links) {
      if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
  };
  masked.adjacency_.resize(base.node_count());
  for (NodeId a = 0; a < base.node_count(); ++a) {
    if (dead[a]) continue;
    for (NodeId b : base.adjacency_[a]) {
      if (dead[b] || link_failed(a, b)) continue;
      masked.adjacency_[a].push_back(b);
      if (a < b) ++masked.link_count_;
    }
  }
  return masked;
}

void Topology::CheckNode(NodeId n) const {
  M2M_CHECK(n >= 0 && n < node_count()) << "node id " << n << " out of range";
}

const Point& Topology::position(NodeId n) const {
  CheckNode(n);
  return positions_[n];
}

const std::vector<NodeId>& Topology::neighbors(NodeId n) const {
  CheckNode(n);
  return adjacency_[n];
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  CheckNode(a);
  CheckNode(b);
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

double Topology::average_degree() const {
  return 2.0 * link_count_ / node_count();
}

bool Topology::IsConnected() const {
  std::vector<int> dist = HopDistancesFrom(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

std::vector<int> Topology::HopDistancesFrom(NodeId origin) const {
  CheckNode(origin);
  std::vector<int> dist(node_count(), -1);
  std::queue<NodeId> frontier;
  dist[origin] = 0;
  frontier.push(origin);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Topology::NodesAtHopDistance(NodeId origin,
                                                 int hops) const {
  std::vector<int> dist = HopDistancesFrom(origin);
  std::vector<NodeId> result;
  for (NodeId n = 0; n < node_count(); ++n) {
    if (dist[n] == hops) result.push_back(n);
  }
  return result;
}

}  // namespace m2m
