#include "topology/topology.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/check.h"

namespace m2m {

namespace {

int64_t CellKey(int64_t cx, int64_t cy) {
  return (cx << 32) ^ static_cast<uint32_t>(cy);
}

}  // namespace

Topology::Topology(std::vector<Point> positions, double radio_range_m)
    : positions_(std::move(positions)), radio_range_m_(radio_range_m) {
  M2M_CHECK_GT(radio_range_m_, 0.0);
  M2M_CHECK(!positions_.empty());
  const int n = node_count();
  adjacency_.resize(n);
  const double range_sq = radio_range_m_ * radio_range_m_;
  // Bucket nodes into radio-range-sized grid cells: every neighbor of a
  // node lies within its 3x3 cell neighborhood, so construction costs
  // O(n * local density) instead of O(n^2) — the difference between
  // milliseconds and hours at 100k nodes. Adjacency lists are sorted per
  // node, so the result is byte-identical to the all-pairs sweep.
  double min_x = positions_[0].x;
  double min_y = positions_[0].y;
  for (const Point& p : positions_) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
  }
  auto cell_of = [&](const Point& p) {
    return std::pair<int64_t, int64_t>(
        static_cast<int64_t>((p.x - min_x) / radio_range_m_),
        static_cast<int64_t>((p.y - min_y) / radio_range_m_));
  };
  std::unordered_map<int64_t, std::vector<NodeId>> buckets;
  buckets.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    auto [cx, cy] = cell_of(positions_[i]);
    buckets[CellKey(cx, cy)].push_back(i);
  }
  for (NodeId a = 0; a < n; ++a) {
    auto [cx, cy] = cell_of(positions_[a]);
    std::vector<NodeId>& list = adjacency_[a];
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = buckets.find(CellKey(cx + dx, cy + dy));
        if (it == buckets.end()) continue;
        for (NodeId b : it->second) {
          if (b != a &&
              DistanceSquared(positions_[a], positions_[b]) <= range_sq) {
            list.push_back(b);
          }
        }
      }
    }
    std::sort(list.begin(), list.end());
    for (NodeId b : list) {
      if (a < b) ++link_count_;
    }
  }
}

Topology Topology::WithFailures(
    const Topology& base,
    const std::vector<std::pair<NodeId, NodeId>>& failed_links,
    const std::vector<NodeId>& dead_nodes) {
  Topology masked;
  masked.positions_ = base.positions_;
  masked.radio_range_m_ = base.radio_range_m_;
  std::vector<bool> dead(base.node_count(), false);
  for (NodeId n : dead_nodes) {
    base.CheckNode(n);
    dead[n] = true;
  }
  auto link_failed = [&](NodeId a, NodeId b) {
    for (const auto& [x, y] : failed_links) {
      if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
  };
  masked.adjacency_.resize(base.node_count());
  for (NodeId a = 0; a < base.node_count(); ++a) {
    if (dead[a]) continue;
    for (NodeId b : base.adjacency_[a]) {
      if (dead[b] || link_failed(a, b)) continue;
      masked.adjacency_[a].push_back(b);
      if (a < b) ++masked.link_count_;
    }
  }
  return masked;
}

void Topology::CheckNode(NodeId n) const {
  M2M_CHECK(n >= 0 && n < node_count()) << "node id " << n << " out of range";
}

const Point& Topology::position(NodeId n) const {
  CheckNode(n);
  return positions_[n];
}

const std::vector<NodeId>& Topology::neighbors(NodeId n) const {
  CheckNode(n);
  return adjacency_[n];
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  CheckNode(a);
  CheckNode(b);
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

double Topology::average_degree() const {
  return 2.0 * link_count_ / node_count();
}

bool Topology::IsConnected() const {
  std::vector<int> dist = HopDistancesFrom(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

std::vector<int> Topology::HopDistancesFrom(NodeId origin) const {
  CheckNode(origin);
  std::vector<int> dist(node_count(), -1);
  std::queue<NodeId> frontier;
  dist[origin] = 0;
  frontier.push(origin);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : adjacency_[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Topology::NodesAtHopDistance(NodeId origin,
                                                 int hops) const {
  std::vector<int> dist = HopDistancesFrom(origin);
  std::vector<NodeId> result;
  for (NodeId n = 0; n < node_count(); ++n) {
    if (dist[n] == hops) result.push_back(n);
  }
  return result;
}

}  // namespace m2m
