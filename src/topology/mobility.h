#ifndef M2M_TOPOLOGY_MOBILITY_H_
#define M2M_TOPOLOGY_MOBILITY_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "geom/point.h"
#include "topology/topology.h"

namespace m2m {

/// Continuous-movement model for a deployment (ROADMAP item 5). Mobility
/// perturbs the *link layer*, not the plan: nodes move between rounds, and
/// a deployment link is up in a round iff its endpoints are within radio
/// range at that round. The planner keeps working against the immutable
/// deployment topology; broken links are discovered in-band by the failure
/// detector exactly like persistent link faults, and re-made links earn
/// readmission through probation.
enum class MobilityModel : uint8_t {
  /// Nobody moves. A trace with this model (or zero speed) masks nothing:
  /// existing fault-schedule runs composed with it are byte-identical.
  kStatic,
  /// Random waypoint: each mobile node repeatedly draws a uniform target in
  /// the movement area, travels toward it at `speed_m_per_round`, pauses
  /// `pause_rounds`, then draws the next target.
  kRandomWaypoint,
  /// Velocity drift: each mobile node keeps a heading that jitters by a
  /// Gaussian of `turn_sigma_rad` per round and advances
  /// `speed_m_per_round` along it, reflecting off the area bounds.
  /// Produces *correlated* link make/break streams: a drifting node breaks
  /// and re-makes whole neighborhoods over consecutive rounds.
  kVelocityDrift,
};

std::string ToString(MobilityModel model);

struct MobilityOptions {
  MobilityModel model = MobilityModel::kStatic;
  /// Rounds of movement to precompute. Queries past the last round see the
  /// final positions (movement stops, like a schedule running out).
  int rounds = 0;
  double speed_m_per_round = 0.0;
  /// Waypoint pause at each reached target, in rounds.
  int pause_rounds = 2;
  /// Per-round heading jitter of the drift model (radians, std dev).
  double turn_sigma_rad = 0.3;
  /// Movement bounds. A zero area defaults to the bounding box of the
  /// initial positions.
  Area area;
  /// Nodes that never move (typically the base station and destinations —
  /// deployments wire sinks for power and backhaul).
  std::vector<NodeId> anchored;
  uint64_t seed = 1;
};

/// One link make (`up = true`) or break (`up = false`) event, relative to
/// the previous round's state. Only deployment-graph links appear.
struct LinkEvent {
  int round = 0;
  NodeId a = kInvalidNode;  ///< Lower endpoint.
  NodeId b = kInvalidNode;  ///< Higher endpoint.
  bool up = false;

  friend bool operator==(const LinkEvent&, const LinkEvent&) = default;
};

/// A precomputed, deterministic mobility trace: per-round node positions
/// plus the induced per-round state of every deployment link (up iff its
/// endpoints are within `radio_range_m` that round). The generator draws
/// from its own dedicated RNG stream — creating a trace perturbs no other
/// seeded stream, so existing fault schedules and readings stay
/// byte-identical whether or not mobility is configured (guarded by the
/// RNG-stream-separation regression in tests/mobility_test.cc).
class MobilityTrace {
 public:
  /// Generates movement per `options` starting from `topology`'s positions.
  static MobilityTrace Generate(const Topology& topology,
                                const MobilityOptions& options);

  /// A scripted trace from explicit per-round positions (round 0 first).
  /// `positions_per_round` must be non-empty and each entry must have one
  /// point per node. Used by tests and benches to build exact
  /// split-then-merge partition scenarios.
  MobilityTrace(const Topology& topology,
                std::vector<std::vector<Point>> positions_per_round);

  /// Last round with distinct movement state; queries clamp to it.
  int rounds() const { return static_cast<int>(down_.size()) - 1; }

  const std::vector<Point>& PositionsAt(int round) const;

  /// True iff the (deployment) link a-b is geometrically up at `round`.
  /// Pairs that are not deployment links return true — the mask only ever
  /// removes capacity, so compose it with a base link model via
  /// conjunction (see sim/mobility_sim.h).
  bool LinkUpAt(int round, NodeId a, NodeId b) const;

  /// Deployment links down at `round`, sorted (lo, hi).
  std::vector<std::pair<NodeId, NodeId>> DownLinksAt(int round) const;

  /// Number of deployment links down at `round`.
  int down_link_count(int round) const;

  /// All make/break events, ordered by (round, a, b).
  const std::vector<LinkEvent>& events() const { return events_; }

  /// Events taking effect at exactly `round`.
  std::vector<LinkEvent> EventsAt(int round) const;

  /// Total break events across the trace (a measure of movement churn).
  int64_t total_breaks() const { return total_breaks_; }
  int64_t total_makes() const { return total_makes_; }

  /// Human-readable event summary (stable across runs).
  std::string Describe() const;

 private:
  MobilityTrace() = default;

  /// Computes per-round down-sets and the event stream from `positions_`.
  void IndexLinkStates(const Topology& topology);

  std::vector<std::vector<Point>> positions_;  ///< [round][node].
  /// Per-round set of down deployment links, packed (lo << 21 | hi).
  std::vector<std::unordered_set<uint64_t>> down_;
  std::vector<LinkEvent> events_;
  int64_t total_breaks_ = 0;
  int64_t total_makes_ = 0;
};

}  // namespace m2m

#endif  // M2M_TOPOLOGY_MOBILITY_H_
