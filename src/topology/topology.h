#ifndef M2M_TOPOLOGY_TOPOLOGY_H_
#define M2M_TOPOLOGY_TOPOLOGY_H_

#include <utility>
#include <vector>

#include "common/ids.h"
#include "geom/point.h"

namespace m2m {

/// A fixed-location wireless sensor network: node positions plus a disk
/// connectivity model (two nodes are neighbors iff their distance is at most
/// the radio range). The adjacency structure is built once at construction
/// and is immutable; dynamic link behavior (transient failures) is modeled at
/// the simulation layer.
class Topology {
 public:
  /// Builds the connectivity graph. Positions are copied; radio_range_m must
  /// be positive.
  Topology(std::vector<Point> positions, double radio_range_m);

  /// A failure-masked copy of `base`: same nodes and positions, minus the
  /// given undirected links and every link incident to a dead node. Node
  /// ids are preserved (dead nodes remain present but isolated), so plans
  /// and runtimes indexed by id keep working across a re-plan.
  static Topology WithFailures(
      const Topology& base,
      const std::vector<std::pair<NodeId, NodeId>>& failed_links,
      const std::vector<NodeId>& dead_nodes);

  Topology(const Topology&) = default;
  Topology& operator=(const Topology&) = default;

  int node_count() const { return static_cast<int>(positions_.size()); }
  double radio_range_m() const { return radio_range_m_; }
  const Point& position(NodeId n) const;
  const std::vector<Point>& positions() const { return positions_; }

  /// Neighbors of `n`, sorted by id.
  const std::vector<NodeId>& neighbors(NodeId n) const;

  bool AreNeighbors(NodeId a, NodeId b) const;

  /// Number of undirected links in the connectivity graph.
  int link_count() const { return link_count_; }

  /// Mean number of neighbors per node.
  double average_degree() const;

  /// True iff the connectivity graph is a single connected component.
  bool IsConnected() const;

  /// Hop distances from `origin` to every node via BFS; unreachable nodes get
  /// -1.
  std::vector<int> HopDistancesFrom(NodeId origin) const;

  /// All nodes whose hop distance from `origin` is exactly `hops`.
  std::vector<NodeId> NodesAtHopDistance(NodeId origin, int hops) const;

 private:
  Topology() = default;  // For WithFailures, which fills the fields itself.

  void CheckNode(NodeId n) const;

  std::vector<Point> positions_;
  double radio_range_m_;
  std::vector<std::vector<NodeId>> adjacency_;
  int link_count_ = 0;
};

}  // namespace m2m

#endif  // M2M_TOPOLOGY_TOPOLOGY_H_
