#ifndef M2M_EVENT_EVENT_RUNTIME_H_
#define M2M_EVENT_EVENT_RUNTIME_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "event/clock.h"
#include "event/event_queue.h"
#include "event/transport.h"
#include "obs/metrics.h"
#include "runtime/network.h"
#include "runtime/node_runtime.h"
#include "sim/energy_model.h"

namespace m2m::event {

/// One compiled node program re-expressed as event handlers (the
/// Yggdrasil-style decomposition: the dispatcher owns time, the node owns
/// reactions). The underlying NodeRuntime is exactly the table-driven state
/// machine the round runtime executes — this wrapper adds the two things an
/// asynchronous schedule needs and a lockstep round never did:
///
///   - a per-node VirtualClock, so "start timestep t" is a *local*-time
///     timer that the engine converts onto the global event line, and
///   - a pre-start mailbox: under drift a fast neighbor's packet can arrive
///     before this node has started the timestep; the handler buffers it
///     and replays the mailbox in arrival order right after the local
///     round start (NodeRuntime rejects receives outside an active round).
class EventNodeRuntime {
 public:
  /// `node` is borrowed and must outlive the wrapper.
  explicit EventNodeRuntime(NodeRuntime* node,
                            VirtualClock clock = VirtualClock{});

  NodeRuntime& node() { return *node_; }
  const NodeRuntime& node() const { return *node_; }
  const VirtualClock& clock() const { return clock_; }
  bool started() const { return started_; }
  size_t buffered_count() const { return buffer_.size(); }

  /// Timer handler for the local timestep-start event: starts the round
  /// with this node's reading, replays buffered pre-start arrivals in
  /// arrival order, and returns every packet that became ready.
  std::vector<NodeRuntime::OutgoingPacket> HandleTimestepStart(
      double reading);

  struct MessageResult {
    /// Receive outcome; meaningful only when `buffered` is false.
    NodeRuntime::ReceiveOutcome outcome =
        NodeRuntime::ReceiveOutcome::kDuplicate;
    /// True when the node had not started the timestep yet: the payload
    /// went to the mailbox and `outcome`/`emitted` are empty.
    bool buffered = false;
    /// Packets that became ready from a fresh receive.
    std::vector<NodeRuntime::OutgoingPacket> emitted;
  };

  /// Message-delivery handler: duplicate-suppressing, epoch-gated receive
  /// (or mailbox buffering before the local round start).
  MessageResult HandleMessage(NodeId sender, int message_id, uint32_t epoch,
                              const std::vector<uint8_t>& payload, int tick);

 private:
  struct BufferedMessage {
    NodeId sender = kInvalidNode;
    int message_id = -1;
    uint32_t epoch = 0;
    std::vector<uint8_t> payload;
    int tick = 0;
  };

  NodeRuntime* node_;
  VirtualClock clock_;
  bool started_ = false;
  std::vector<BufferedMessage> buffer_;
};

/// Event-driven execution engine over a RuntimeNetwork fleet: a
/// deterministic discrete-event dispatcher (EventQueue) driving
/// EventNodeRuntime handlers through a pluggable Transport, instead of the
/// global round barrier.
///
/// Two execution modes:
///
///   - `RunCompatRound`: the round-compatibility mode. With a
///     RoundCompatTransport (zero hop latency — the round model's
///     slot semantics) it reproduces `RuntimeNetwork::RunRoundLossy`
///     byte-identically: same traces, same metrics JSON, same aggregate
///     bits (tests/event_test.cc pins this with a 20-seed differential).
///     The round barrier is thereby demoted to a special case of the
///     event engine.
///
///   - `RunPipelined`: genuinely asynchronous execution the round model
///     cannot express. Per-node virtual clocks release timestep starts on
///     each node's *local* schedule, per-hop latency puts deliveries on
///     the global event line, and multiple timesteps overlap in flight
///     (block-computation pipelining); retirement is per-timestep
///     quiescence. Retransmit timers are cancelled exactly when the ack
///     lands — the event queue's Cancel in anger.
///
/// The engine borrows the fleet: images, epochs and (in compat mode) round
/// state are shared with the round-based runtime, so the two models can be
/// interleaved over one deployment.
class EventNetwork {
 public:
  explicit EventNetwork(RuntimeNetwork& fleet);

  /// Registers the same runtime metric set RuntimeNetwork::set_metrics
  /// registers, in the same order — a compat round renders a byte-identical
  /// metrics JSON. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Registers the event-engine instrumentation (`event.*`): queue depth,
  /// handler scheduling-latency histogram, pipeline occupancy, processed
  /// event and cancelled timer counters. Kept separate from set_metrics so
  /// byte-identity differentials can run with engine introspection off.
  void set_event_metrics(obs::MetricsRegistry* metrics);

  /// Runs one timestep in round-compatibility mode over `transport`.
  /// `timestep` is forwarded to the transport's per-timestep decisions
  /// (a RoundCompatTransport ignores it — its LossyLinkModel is already
  /// bound to a round).
  RuntimeNetwork::LossyResult RunCompatRound(
      const std::vector<double>& readings, const Transport& transport,
      const RetryPolicy& retry = {}, const EnergyModel& energy = {},
      EventTrace* trace = nullptr, int timestep = 0);

  struct PipelineOptions {
    /// Local-clock ticks between successive timestep releases: node n
    /// starts timestep t when its local clock reads t * interval. Smaller
    /// intervals (relative to per-timestep completion time) deepen the
    /// pipeline.
    int64_t timestep_interval_ticks = 8;
    /// Per-node clock specs (size node_count); empty = identity clocks.
    std::vector<ClockSpec> clocks;
    RetryPolicy retry;
  };

  struct PipelineResult {
    struct Timestep {
      std::unordered_map<NodeId, double> destination_values;
      std::vector<NodeId> incomplete_destinations;
      int64_t attempts = 0;
      int64_t deliveries = 0;
      int64_t retransmissions = 0;
      int64_t duplicates = 0;  ///< Dedup-suppressed deliveries.
      int64_t messages_abandoned = 0;
      int64_t corrupt_frames = 0;
      /// Deliveries that arrived before the recipient's local round start
      /// and were mailbox-buffered (nonzero only when drift makes a sender
      /// run ahead of its receiver; the pipelining evidence).
      int64_t buffered_prestart = 0;
      int64_t start_tick = -1;   ///< Global tick of the first node start.
      int64_t retire_tick = -1;  ///< Global tick of quiescence.
    };
    std::vector<Timestep> timesteps;
    /// Peak number of timesteps simultaneously live (started, not yet
    /// retired) — >= 2 demonstrates pipelined execution.
    int max_in_flight = 0;
    int64_t final_tick = 0;
    uint64_t events_processed = 0;
    uint64_t retransmit_timers_cancelled = 0;
  };

  /// Runs `readings_per_timestep.size()` timesteps asynchronously over
  /// `transport`. Each timestep executes on its own clones of the fleet's
  /// node runtimes (retired and freed at quiescence), so overlapping
  /// timesteps never share mutable per-round state; the fleet itself is
  /// not mutated.
  PipelineResult RunPipelined(
      const std::vector<std::vector<double>>& readings_per_timestep,
      const Transport& transport, const PipelineOptions& options);

 private:
  struct RuntimeMetricHandles {
    obs::MetricHandle tx_attempts;
    obs::MetricHandle tx_bytes;
    obs::MetricHandle rx_packets;
    obs::MetricHandle rx_bytes;
    obs::MetricHandle hop_transmissions;
    obs::MetricHandle retransmissions;
    obs::MetricHandle backoff_wait_ticks;
    obs::MetricHandle acks_delivered;
    obs::MetricHandle acks_lost;
    obs::MetricHandle dedup_hits;
    obs::MetricHandle epoch_gate_drops;
    obs::MetricHandle messages_abandoned;
    obs::MetricHandle tx_packets;
    obs::MetricHandle delivery_passes;
    obs::MetricHandle attempts_per_message;
    obs::MetricHandle round_ticks;
    obs::MetricHandle installs;
    obs::MetricHandle install_bytes;
    obs::MetricHandle chan_corrupt_frames;
    obs::MetricHandle chan_duplicated;
    obs::MetricHandle chan_reordered;
    obs::MetricHandle coverage_per_destination;
    obs::MetricHandle coverage_degraded_rounds;
  };
  struct EventMetricHandles {
    obs::MetricHandle events_processed;
    obs::MetricHandle queue_depth;
    obs::MetricHandle handler_latency_ticks;
    obs::MetricHandle pipeline_occupancy;
    obs::MetricHandle timers_cancelled;
  };

  RuntimeNetwork* fleet_;
  obs::MetricsRegistry* metrics_ = nullptr;
  RuntimeMetricHandles handles_;
  obs::MetricsRegistry* event_metrics_ = nullptr;
  EventMetricHandles event_handles_;
};

}  // namespace m2m::event

#endif  // M2M_EVENT_EVENT_RUNTIME_H_
