#include "event/transport.h"

#include <algorithm>
#include <sstream>

namespace m2m::event {

RoundCompatTransport::RoundCompatTransport(const LossyLinkModel& links)
    : links_(&links) {}

bool RoundCompatTransport::AttemptDelivers(int timestep, NodeId from,
                                           NodeId to, int attempt) const {
  (void)timestep;
  if (!links_->attempt_delivers) return true;
  return links_->attempt_delivers(from, to, attempt);
}

HopEffects RoundCompatTransport::EffectsFor(int timestep, NodeId from,
                                            NodeId to, int attempt) const {
  (void)timestep;
  if (!links_->hop_effects) return HopEffects{};
  return links_->hop_effects(from, to, attempt);
}

bool RoundCompatTransport::NodeAlive(int timestep, NodeId node) const {
  (void)timestep;
  if (!links_->node_alive) return true;
  return links_->node_alive(node);
}

int RoundCompatTransport::max_delay_ticks() const {
  return links_->max_delay_ticks;
}

std::string RoundCompatTransport::Describe() const {
  std::ostringstream out;
  out << "{\"kind\": \"round_compat\", \"hop_latency_ticks\": 0, "
      << "\"max_delay_ticks\": " << links_->max_delay_ticks << "}";
  return out.str();
}

SimChannelTransport::SimChannelTransport(const ChannelModel* channel,
                                         Options options)
    : channel_(channel), options_(std::move(options)) {
  options_.base_hop_latency_ticks =
      std::max<int64_t>(1, options_.base_hop_latency_ticks);
}

bool SimChannelTransport::AttemptDelivers(int timestep, NodeId from, NodeId to,
                                          int attempt) const {
  if (channel_ == nullptr) return true;
  return channel_->AttemptDelivers(timestep, from, to, attempt);
}

HopEffects SimChannelTransport::EffectsFor(int timestep, NodeId from,
                                           NodeId to, int attempt) const {
  if (channel_ == nullptr) return HopEffects{};
  return channel_->EffectsFor(timestep, from, to, attempt);
}

bool SimChannelTransport::NodeAlive(int timestep, NodeId node) const {
  if (!options_.node_alive) return true;
  return options_.node_alive(timestep, node);
}

int SimChannelTransport::max_delay_ticks() const {
  return channel_ == nullptr ? 0 : channel_->options().max_delay_ticks;
}

int64_t SimChannelTransport::HopLatencyTicks(NodeId from, NodeId to) const {
  if (options_.link_latency) {
    const int64_t latency = options_.link_latency(from, to);
    if (latency > 0) return latency;
  }
  return options_.base_hop_latency_ticks;
}

std::string SimChannelTransport::Describe() const {
  std::ostringstream out;
  out << "{\"kind\": \"sim_channel\", \"hop_latency_ticks\": "
      << options_.base_hop_latency_ticks << ", \"max_delay_ticks\": "
      << max_delay_ticks() << ", \"channel\": "
      << (channel_ == nullptr ? "false" : "true") << "}";
  return out.str();
}

}  // namespace m2m::event
