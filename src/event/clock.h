#ifndef M2M_EVENT_CLOCK_H_
#define M2M_EVENT_CLOCK_H_

#include <cstdint>
#include <vector>

namespace m2m::event {

/// One node's crystal, relative to the simulation's global tick line:
///
///   local(g) = offset_ticks + g + floor(g * skew_ppm / 1e6)
///
/// `skew_ppm` models rate drift (a +500 ppm crystal gains one local tick
/// every 2000 global ticks), `offset_ticks` models boot-time phase error.
/// All arithmetic is exact int64 fixed-point — no doubles — so clock
/// conversions are bit-identical across platforms and replays, which keeps
/// drifted schedules inside the determinism contract.
///
/// The zero spec (offset 0, skew 0) is the identity map; the byte-identity
/// anchor against the round runtime runs entirely on identity clocks.
struct ClockSpec {
  int64_t offset_ticks = 0;
  int32_t skew_ppm = 0;

  bool is_identity() const { return offset_ticks == 0 && skew_ppm == 0; }
};

/// Conversions for one node's clock. Monotone in both directions for any
/// |skew_ppm| < 1e6 (rates stay positive).
class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(const ClockSpec& spec);

  const ClockSpec& spec() const { return spec_; }

  /// Local reading at global tick `global` (global >= 0).
  int64_t LocalAt(int64_t global) const;

  /// Earliest global tick whose local reading is >= `local`: the instant a
  /// local-time timer for `local` fires on the global event line. Exact
  /// inverse: LocalAt(GlobalFor(L)) >= L and LocalAt(GlobalFor(L) - 1) < L.
  int64_t GlobalFor(int64_t local) const;

 private:
  ClockSpec spec_;
};

/// Seeded drift regime: every node draws an independent skew in
/// [-max_skew_ppm, +max_skew_ppm] and an offset in [0, max_offset_ticks],
/// as pure hashes of (seed, node) — no RNG state, so clock assignment
/// commutes with everything else. max_skew_ppm = 0 and
/// max_offset_ticks = 0 yield identity clocks for every node.
struct DriftOptions {
  int32_t max_skew_ppm = 0;
  int64_t max_offset_ticks = 0;
  uint64_t seed = 1;
};

std::vector<ClockSpec> BuildDriftClocks(int node_count,
                                        const DriftOptions& options);

}  // namespace m2m::event

#endif  // M2M_EVENT_CLOCK_H_
