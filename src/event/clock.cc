#include "event/clock.h"

#include <cstdlib>

#include "common/check.h"
#include "common/rng.h"

namespace m2m::event {

VirtualClock::VirtualClock(const ClockSpec& spec) : spec_(spec) {
  M2M_CHECK(std::abs(static_cast<int64_t>(spec.skew_ppm)) < 1000000)
      << "skew must keep the clock rate positive";
}

int64_t VirtualClock::LocalAt(int64_t global) const {
  M2M_CHECK_GE(global, 0);
  // floor(global * skew_ppm / 1e6) in exact integer arithmetic. global is
  // a tick count (< 2^40 in practice), skew < 1e6, so the product fits
  // int64 far below overflow for any run this simulator can complete.
  const int64_t scaled = global * static_cast<int64_t>(spec_.skew_ppm);
  int64_t drift = scaled / 1000000;
  if (scaled % 1000000 != 0 && scaled < 0) drift -= 1;  // Floor, not trunc.
  return spec_.offset_ticks + global + drift;
}

int64_t VirtualClock::GlobalFor(int64_t local) const {
  // Initial guess from the inverse rate, then fix up with the exact
  // forward map. The guess is within a few ticks of the answer for any
  // legal skew, so the loops below run O(1) iterations.
  const double rate =
      1.0 + static_cast<double>(spec_.skew_ppm) / 1000000.0;
  int64_t global = static_cast<int64_t>(
      static_cast<double>(local - spec_.offset_ticks) / rate);
  if (global < 0) global = 0;
  while (LocalAt(global) < local) ++global;
  while (global > 0 && LocalAt(global - 1) >= local) --global;
  return global;
}

std::vector<ClockSpec> BuildDriftClocks(int node_count,
                                        const DriftOptions& options) {
  M2M_CHECK_GE(node_count, 0);
  M2M_CHECK_GE(options.max_skew_ppm, 0);
  M2M_CHECK(options.max_skew_ppm < 1000000);
  M2M_CHECK_GE(options.max_offset_ticks, 0);
  std::vector<ClockSpec> clocks(static_cast<size_t>(node_count));
  if (options.max_skew_ppm == 0 && options.max_offset_ticks == 0) {
    return clocks;  // Identity for every node, no hashing.
  }
  for (int n = 0; n < node_count; ++n) {
    ClockSpec& spec = clocks[static_cast<size_t>(n)];
    const uint64_t h1 = SplitMix64(options.seed ^
                                   (0x9E3779B97F4A7C15ULL +
                                    static_cast<uint64_t>(n) * 2));
    const uint64_t h2 = SplitMix64(options.seed ^
                                   (0xC2B2AE3D27D4EB4FULL +
                                    static_cast<uint64_t>(n) * 2 + 1));
    if (options.max_skew_ppm > 0) {
      const int64_t span = 2 * static_cast<int64_t>(options.max_skew_ppm) + 1;
      spec.skew_ppm = static_cast<int32_t>(
          static_cast<int64_t>(h1 % static_cast<uint64_t>(span)) -
          options.max_skew_ppm);
    }
    if (options.max_offset_ticks > 0) {
      spec.offset_ticks = static_cast<int64_t>(
          h2 % static_cast<uint64_t>(options.max_offset_ticks + 1));
    }
  }
  return clocks;
}

}  // namespace m2m::event
