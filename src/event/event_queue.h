#ifndef M2M_EVENT_EVENT_QUEUE_H_
#define M2M_EVENT_EVENT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace m2m::event {

/// Handle to a scheduled event, usable for exact cancellation. The sequence
/// number doubles as the deterministic tie-breaker: two events at the same
/// virtual time fire in the order they were scheduled, on every platform,
/// for every heap layout. A default-constructed id is invalid.
struct EventId {
  uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

/// Deterministic discrete-event priority queue, keyed by
/// `(time, tie_break_seq)`.
///
/// This is the core of the asynchronous runtime: timer events and
/// message-delivery events both live here, and every ordering decision the
/// simulation makes reduces to the strict weak order below — no pointer
/// values, no hash iteration order, no platform-dependent heap layout leaks
/// into execution order. Replaying the same schedule therefore pops the
/// same events in the same order, byte for byte (tests/event_test.cc pins
/// this with a churn differential).
///
/// Cancellation is *exact*: `Cancel(id)` guarantees the event never fires,
/// and double-cancel / cancel-after-fire are detected (return false).
/// Cancelled entries are tombstoned in the heap and physically removed by
/// compaction once they outnumber live entries, so a workload that
/// schedules and cancels millions of timers (every acked retransmission
/// cancels one) keeps the heap at O(live), not O(ever scheduled) — the
/// ring/eviction discipline the dedup table already follows.
template <typename E>
class EventQueue {
 public:
  struct Fired {
    int64_t time = 0;
    uint64_t seq = 0;
    E payload;
  };

  /// Schedules `payload` at virtual `time`. Times may be scheduled in any
  /// order (including the currently popping time); ties fire in schedule
  /// order.
  EventId Schedule(int64_t time, E payload) {
    const uint64_t seq = ++last_seq_;
    heap_.push_back(Entry{time, seq, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
    ++scheduled_total_;
    return EventId{seq};
  }

  /// Cancels a pending event. Returns true iff the event was still pending
  /// (it will now never fire); false if it already fired, was already
  /// cancelled, or the id is invalid.
  bool Cancel(EventId id) {
    if (!id.valid() || id.seq > last_seq_) return false;
    if (id.seq < fired_floor_ || fired_.count(id.seq) > 0) return false;
    if (!cancelled_.insert(id.seq).second) return false;
    ++cancelled_total_;
    MaybeCompact();
    return true;
  }

  bool empty() const { return size() == 0; }

  /// Live (pending, uncancelled) events.
  size_t size() const { return heap_.size() - cancelled_in_heap(); }

  /// Physical heap entries, including tombstones awaiting compaction. The
  /// memory-boundedness regression asserts this stays O(size()).
  size_t heap_size() const { return heap_.size(); }

  /// Virtual time of the next live event, or nullopt when empty.
  std::optional<int64_t> NextTime() {
    SkipTombstones();
    if (heap_.empty()) return std::nullopt;
    return heap_.front().time;
  }

  /// Pops the next live event in (time, seq) order.
  std::optional<Fired> Pop() {
    SkipTombstones();
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    RememberFired(entry.seq);
    return Fired{entry.time, entry.seq, std::move(entry.payload)};
  }

  uint64_t scheduled_total() const { return scheduled_total_; }
  uint64_t cancelled_total() const { return cancelled_total_; }

 private:
  struct Entry {
    int64_t time = 0;
    uint64_t seq = 0;
    E payload;
  };

  /// Max-heap comparator inverted into a min-heap on (time, seq).
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  size_t cancelled_in_heap() const { return cancelled_.size(); }

  /// Drops cancelled entries sitting at the heap top so NextTime/Pop only
  /// ever observe live events.
  void SkipTombstones() {
    while (!heap_.empty() && cancelled_.count(heap_.front().seq) > 0) {
      std::pop_heap(heap_.begin(), heap_.end(), Later);
      cancelled_.erase(heap_.back().seq);
      RememberFired(heap_.back().seq);  // Cancelled == consumed.
      heap_.pop_back();
    }
  }

  /// Physically removes tombstones once they dominate the heap. Amortized
  /// O(1) per cancellation; keeps heap memory proportional to live events.
  void MaybeCompact() {
    if (cancelled_.size() <= heap_.size() / 2 || heap_.size() < 64) return;
    std::vector<Entry> live;
    live.reserve(heap_.size() - cancelled_.size());
    for (Entry& entry : heap_) {
      if (cancelled_.count(entry.seq) > 0) {
        RememberFired(entry.seq);  // Consumed by compaction.
      } else {
        live.push_back(std::move(entry));
      }
    }
    heap_ = std::move(live);
    std::make_heap(heap_.begin(), heap_.end(), Later);
    cancelled_.clear();
  }

  /// Marks a sequence number as consumed so a later Cancel reports false.
  /// The set is bounded: runs that consume millions of events prune it
  /// against the live window (every seq below the minimum live seq can be
  /// summarized by `fired_floor_`).
  void RememberFired(uint64_t seq) {
    fired_.insert(seq);
    if (fired_.size() > 2 * (heap_.size() + 64)) {
      // Everything at or below the smallest live seq minus one is fired or
      // cancelled; collapse the prefix into the floor.
      uint64_t min_live = last_seq_ + 1;
      for (const Entry& entry : heap_) {
        min_live = std::min(min_live, entry.seq);
      }
      for (auto it = fired_.begin(); it != fired_.end();) {
        if (*it < min_live) {
          it = fired_.erase(it);
        } else {
          ++it;
        }
      }
      fired_floor_ = min_live;
    }
  }

  friend class EventQueueTestPeer;

  std::vector<Entry> heap_;
  /// Tombstoned (cancelled, still physically in the heap) seqs.
  std::unordered_set<uint64_t> cancelled_;
  /// Consumed seqs above `fired_floor_` (for cancel-after-fire detection).
  std::unordered_set<uint64_t> fired_;
  uint64_t fired_floor_ = 0;
  uint64_t last_seq_ = 0;
  uint64_t scheduled_total_ = 0;
  uint64_t cancelled_total_ = 0;
};

}  // namespace m2m::event

#endif  // M2M_EVENT_EVENT_QUEUE_H_
