#ifndef M2M_EVENT_TRANSPORT_H_
#define M2M_EVENT_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/ids.h"
#include "runtime/channel.h"
#include "runtime/network.h"

namespace m2m::event {

/// Pluggable link layer for the event-driven runtime.
///
/// A transport answers pure per-(timestep, directed hop, attempt) questions
/// — does this hop deliver, what channel side effects ride along, how many
/// engine ticks does the hop take — and never holds mutable state, so the
/// engine may evaluate hops in any order the event queue produces and a
/// replay is byte-identical. The same compiled node programs run unchanged
/// over any implementation; a UDP-socket transport later only has to answer
/// the same interface from real I/O.
class Transport {
 public:
  virtual ~Transport() = default;

  /// True iff the directed hop (from -> to) delivers on this attempt of
  /// this timestep's message.
  virtual bool AttemptDelivers(int timestep, NodeId from, NodeId to,
                               int attempt) const = 0;

  /// Channel side effects for a crossed hop (delay/duplication/corruption).
  virtual HopEffects EffectsFor(int timestep, NodeId from, NodeId to,
                                int attempt) const {
    (void)timestep;
    (void)from;
    (void)to;
    (void)attempt;
    return HopEffects{};
  }

  /// False while `node` is down for this timestep (neither starts the
  /// round nor receives).
  virtual bool NodeAlive(int timestep, NodeId node) const {
    (void)timestep;
    (void)node;
    return true;
  }

  /// Upper bound on EffectsFor's accumulated delay per attempt direction
  /// (the dedup-eviction horizon extension, as in LossyLinkModel).
  virtual int max_delay_ticks() const { return 0; }

  /// Scheduling latency of one crossed hop in engine ticks. The simulated
  /// async transport returns >= 1 (a radio hop takes time); the
  /// round-compatibility transport returns 0 (a whole attempt completes
  /// within its tick, the round model's slot semantics).
  virtual int64_t HopLatencyTicks(NodeId from, NodeId to) const {
    (void)from;
    (void)to;
    return 0;
  }

  /// One-line JSON object fragment describing the transport configuration
  /// (bench metadata; see bench::TransportConfigJson).
  virtual std::string Describe() const = 0;
};

/// Round-compatibility transport: wraps the per-round LossyLinkModel the
/// lockstep runtime consumes. Zero hop latency reproduces the round
/// barrier's slot semantics exactly — the byte-identity anchor transport.
class RoundCompatTransport : public Transport {
 public:
  /// `links` must outlive the transport (it is a per-round binding).
  explicit RoundCompatTransport(const LossyLinkModel& links);

  bool AttemptDelivers(int timestep, NodeId from, NodeId to,
                       int attempt) const override;
  HopEffects EffectsFor(int timestep, NodeId from, NodeId to,
                        int attempt) const override;
  bool NodeAlive(int timestep, NodeId node) const override;
  int max_delay_ticks() const override;
  std::string Describe() const override;

 private:
  const LossyLinkModel* links_;
};

/// Simulated asynchronous transport: the event queue is the medium. Loss,
/// burst, duplication, corruption and queueing delay come from the existing
/// adversarial ChannelModel (timestep plays the channel's round role);
/// per-hop latency is a configurable base plus an optional per-link
/// override, always >= 1 tick so delivery is genuinely asynchronous.
class SimChannelTransport : public Transport {
 public:
  struct Options {
    /// Ticks one radio hop takes before the packet is handed to the next
    /// node. Clamped to >= 1.
    int64_t base_hop_latency_ticks = 1;
    /// Optional per-directed-link latency override (return <= 0 to fall
    /// back to the base). Must be pure.
    std::function<int64_t(NodeId from, NodeId to)> link_latency;
    /// Optional liveness mask per (timestep, node). Null = all alive.
    std::function<bool(int timestep, NodeId node)> node_alive;
  };

  /// `channel` may be null for a perfect (lossless, effect-free) medium;
  /// when non-null it must outlive the transport.
  SimChannelTransport(const ChannelModel* channel, Options options);

  bool AttemptDelivers(int timestep, NodeId from, NodeId to,
                       int attempt) const override;
  HopEffects EffectsFor(int timestep, NodeId from, NodeId to,
                        int attempt) const override;
  bool NodeAlive(int timestep, NodeId node) const override;
  int max_delay_ticks() const override;
  int64_t HopLatencyTicks(NodeId from, NodeId to) const override;
  std::string Describe() const override;

 private:
  const ChannelModel* channel_;
  Options options_;
};

}  // namespace m2m::event

#endif  // M2M_EVENT_TRANSPORT_H_
