#include "event/event_runtime.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "common/check.h"
#include "runtime/wire_functions.h"

namespace m2m::event {

EventNodeRuntime::EventNodeRuntime(NodeRuntime* node, VirtualClock clock)
    : node_(node), clock_(clock) {
  M2M_CHECK(node != nullptr);
}

std::vector<NodeRuntime::OutgoingPacket> EventNodeRuntime::HandleTimestepStart(
    double reading) {
  node_->StartRound(reading);
  started_ = true;
  // Replay the pre-start mailbox in arrival order: the dedup/epoch gates
  // apply exactly as they would have for an in-round arrival.
  for (BufferedMessage& buffered : buffer_) {
    node_->OnReceiveOnce(buffered.sender, buffered.message_id, buffered.epoch,
                         buffered.payload, buffered.tick);
  }
  buffer_.clear();
  return node_->DrainReadyPackets();
}

EventNodeRuntime::MessageResult EventNodeRuntime::HandleMessage(
    NodeId sender, int message_id, uint32_t epoch,
    const std::vector<uint8_t>& payload, int tick) {
  MessageResult result;
  if (!started_) {
    result.buffered = true;
    buffer_.push_back(
        BufferedMessage{sender, message_id, epoch, payload, tick});
    return result;
  }
  result.outcome = node_->OnReceiveOnce(sender, message_id, epoch, payload,
                                        tick);
  if (result.outcome == NodeRuntime::ReceiveOutcome::kFresh) {
    result.emitted = node_->DrainReadyPackets();
  }
  return result;
}

EventNetwork::EventNetwork(RuntimeNetwork& fleet) : fleet_(&fleet) {}

void EventNetwork::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  // Same names, same registration order as RuntimeNetwork::set_metrics —
  // the ToJson snapshot of a compat round is byte-identical to the round
  // runtime's.
  handles_.tx_attempts = metrics_->Counter("runtime.tx_attempts");
  handles_.tx_bytes = metrics_->Counter("runtime.tx_bytes");
  handles_.rx_packets = metrics_->Counter("runtime.rx_packets");
  handles_.rx_bytes = metrics_->Counter("runtime.rx_bytes");
  handles_.hop_transmissions = metrics_->Counter("runtime.hop_transmissions");
  handles_.retransmissions = metrics_->Counter("runtime.retransmissions");
  handles_.backoff_wait_ticks =
      metrics_->Counter("runtime.backoff_wait_ticks");
  handles_.acks_delivered = metrics_->Counter("runtime.acks_delivered");
  handles_.acks_lost = metrics_->Counter("runtime.acks_lost");
  handles_.dedup_hits = metrics_->Counter("runtime.dedup_hits");
  handles_.epoch_gate_drops = metrics_->Counter("runtime.epoch_gate_drops");
  handles_.messages_abandoned =
      metrics_->Counter("runtime.messages_abandoned");
  handles_.tx_packets = metrics_->Counter("runtime.tx_packets");
  handles_.delivery_passes = metrics_->Counter("runtime.delivery_passes");
  handles_.attempts_per_message =
      metrics_->Histogram("runtime.attempts_per_message");
  handles_.round_ticks = metrics_->Histogram("runtime.round_ticks");
  handles_.installs = metrics_->Counter("runtime.image_installs");
  handles_.install_bytes = metrics_->Counter("runtime.image_install_bytes");
  handles_.chan_corrupt_frames = metrics_->Counter("chan.corrupt_frames");
  handles_.chan_duplicated = metrics_->Counter("chan.duplicated");
  handles_.chan_reordered = metrics_->Counter("chan.reordered");
  handles_.coverage_per_destination = metrics_->Histogram(
      "coverage.per_destination", {0, 10, 25, 50, 75, 90, 100});
  handles_.coverage_degraded_rounds =
      metrics_->Counter("coverage.degraded_rounds");
}

void EventNetwork::set_event_metrics(obs::MetricsRegistry* metrics) {
  event_metrics_ = metrics;
  if (event_metrics_ == nullptr) return;
  event_handles_.events_processed =
      event_metrics_->Counter("event.events_processed");
  event_handles_.queue_depth = event_metrics_->Histogram("event.queue_depth");
  event_handles_.handler_latency_ticks =
      event_metrics_->Histogram("event.handler_latency_ticks");
  event_handles_.pipeline_occupancy = event_metrics_->Histogram(
      "event.pipeline_occupancy", {1, 2, 3, 4, 6, 8, 12, 16});
  event_handles_.timers_cancelled =
      event_metrics_->Counter("event.timers_cancelled");
}

RuntimeNetwork::LossyResult EventNetwork::RunCompatRound(
    const std::vector<double>& readings, const Transport& transport,
    const RetryPolicy& retry, const EnergyModel& energy, EventTrace* trace,
    int timestep) {
  RuntimeNetwork& fleet = *fleet_;
  const int node_count = fleet.node_count();
  M2M_CHECK_EQ(readings.size(), static_cast<size_t>(node_count));
  M2M_CHECK_GE(retry.max_attempts, 1);
  M2M_CHECK_GE(retry.ack_timeout_ticks, 1);
  M2M_CHECK_GE(retry.backoff_factor, 1);
  M2M_CHECK_GE(retry.max_backoff_ticks, retry.ack_timeout_ticks)
      << "max_backoff_ticks must not undercut the base ack timeout";
  M2M_CHECK_GE(transport.max_delay_ticks(), 0);
  const int64_t retry_horizon_ticks = retry.RetryHorizonTicks();
  const int64_t evict_horizon_ticks =
      retry_horizon_ticks + transport.max_delay_ticks();
  M2M_CHECK_LE(evict_horizon_ticks, int64_t{1} << 30)
      << "retry policy horizon overflows the tick domain";
  auto alive = [&](NodeId n) { return transport.NodeAlive(timestep, n); };

  RuntimeNetwork::LossyResult result;
  const bool track_node_energy = fleet.track_node_energy();
  if (track_node_energy) {
    result.node_energy_mj.assign(static_cast<size_t>(node_count), 0.0);
  }

  // Node handlers over the shared fleet; identity clocks (compat mode is
  // the zero-drift special case of the event engine).
  std::vector<EventNodeRuntime> handlers;
  handlers.reserve(static_cast<size_t>(node_count));
  for (NodeId n = 0; n < node_count; ++n) {
    handlers.emplace_back(&fleet.mutable_node_runtime(n));
  }

  // The transcription below mirrors RuntimeNetwork::RunRoundLossy's serial
  // path statement for statement — same per-object write order for the
  // result counters, energy terms (floating-point addition order is part
  // of the byte-identity contract), trace records, metric updates, and
  // schedule order — with the agenda, dispatch and node interaction routed
  // through the event engine's queue, Transport and handlers instead.
  struct Transfer {
    NodeId sender = kInvalidNode;
    NodeRuntime::OutgoingPacket packet;
    uint32_t epoch = 0;
    int attempts_made = 0;
    bool delivered_once = false;
    bool acked = false;
    bool done = false;
    int pending_events = 0;
    int pending_retransmits = 0;
    int last_arrival_attempt = 0;
  };
  std::vector<Transfer> transfers;

  struct Event {
    enum class Kind : uint8_t { kTransmit, kDeliver, kAckArrive };
    Kind kind = Kind::kTransmit;
    size_t index = 0;
    int attempt = 0;
    bool retransmit = false;
    bool corrupt = false;
    uint32_t corrupt_bit = 0;
    bool is_dup = false;
    int64_t origin = 0;  ///< Tick the event was scheduled at (latency obs).
  };
  EventQueue<Event> agenda;

  auto observe_message_done = [&](const Transfer& transfer) {
    if (metrics_ != nullptr) {
      metrics_->Observe(handles_.attempts_per_message,
                        transfer.attempts_made);
    }
  };
  auto maybe_finalize = [&](size_t index, int tick) {
    Transfer& t = transfers[index];
    if (t.done) return;
    if (t.acked) {
      t.done = true;
      observe_message_done(t);
      return;
    }
    if (t.attempts_made >= retry.max_attempts && t.pending_events == 0 &&
        t.pending_retransmits == 0) {
      t.done = true;
      observe_message_done(t);
      if (!t.delivered_once) {
        result.messages_abandoned += 1;
        if (metrics_ != nullptr) {
          metrics_->AddNode(handles_.messages_abandoned, t.sender, 1);
        }
        if (trace != nullptr) {
          trace->GiveUp(tick, t.sender, t.packet.recipient,
                        t.packet.local_message_id);
        }
      }
    }
  };
  auto apply_ack = [&](size_t index) {
    if (metrics_ != nullptr) {
      metrics_->AddNode(handles_.acks_delivered, transfers[index].sender, 1);
    }
    transfers[index].acked = true;
  };

  auto process_arrival = [&](size_t index, int attempt, int arrival_tick,
                             bool corrupt, uint32_t corrupt_bit,
                             bool is_dup) {
    const NodeId sender = transfers[index].sender;
    const int message_id = transfers[index].packet.local_message_id;
    const NodeId packet_recipient = transfers[index].packet.recipient;
    const int payload =
        static_cast<int>(transfers[index].packet.payload.size());
    const std::vector<NodeId>& segment =
        fleet.node_message_segments(sender)[message_id];

    if (corrupt) {
      std::vector<uint8_t> frame =
          wire::FrameWithCrc32(transfers[index].packet.payload);
      size_t bit = corrupt_bit % (frame.size() * 8);
      frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      std::optional<std::vector<uint8_t>> opened =
          wire::TryOpenCrc32Frame(frame);
      if (!opened.has_value()) {
        result.corrupt_frames += 1;
        if (metrics_ != nullptr) {
          metrics_->AddNode(handles_.chan_corrupt_frames, packet_recipient,
                            1);
        }
        if (trace != nullptr) {
          trace->Send(arrival_tick, sender, packet_recipient, message_id,
                      attempt, payload, obs::SendOutcome::kCorrupt, false, 0);
        }
        return;
      }
    }

    result.deliveries += 1;
    result.payload_bytes += payload;
    if (is_dup) {
      result.spontaneous_duplicates += 1;
      if (metrics_ != nullptr) metrics_->Add(handles_.chan_duplicated, 1);
    }
    if (attempt < transfers[index].last_arrival_attempt) {
      result.reordered_deliveries += 1;
      if (metrics_ != nullptr) metrics_->Add(handles_.chan_reordered, 1);
    } else {
      transfers[index].last_arrival_attempt = attempt;
    }
    if (metrics_ != nullptr) {
      metrics_->AddNode(handles_.rx_packets, packet_recipient, 1);
      metrics_->AddNode(handles_.rx_bytes, packet_recipient, payload);
    }
    obs::SendOutcome outcome = obs::SendOutcome::kRx;
    EventNodeRuntime::MessageResult received =
        handlers[packet_recipient].HandleMessage(
            sender, message_id, transfers[index].epoch,
            transfers[index].packet.payload, arrival_tick);
    M2M_CHECK(!received.buffered)
        << "compat mode starts every alive node at tick 0";
    switch (received.outcome) {
      case NodeRuntime::ReceiveOutcome::kFresh:
        transfers[index].delivered_once = true;
        for (NodeRuntime::OutgoingPacket& packet : received.emitted) {
          transfers.push_back(
              Transfer{packet_recipient, std::move(packet),
                       fleet.node_runtime(packet_recipient).plan_epoch()});
          Event event;
          event.index = transfers.size() - 1;
          event.origin = arrival_tick;
          agenda.Schedule(arrival_tick + 1, event);
        }
        outcome = obs::SendOutcome::kRx;
        break;
      case NodeRuntime::ReceiveOutcome::kDuplicate:
        result.duplicates += 1;
        if (metrics_ != nullptr) {
          metrics_->AddNode(handles_.dedup_hits, packet_recipient, 1);
        }
        outcome = obs::SendOutcome::kDuplicate;
        break;
      case NodeRuntime::ReceiveOutcome::kEpochMismatch:
        transfers[index].delivered_once = true;
        result.epoch_rejected += 1;
        if (metrics_ != nullptr) {
          metrics_->AddNode(handles_.epoch_gate_drops, packet_recipient, 1);
        }
        outcome = obs::SendOutcome::kEpochRejected;
        break;
    }
    bool ack_ok = true;
    int ack_hops = 0;
    int ack_delay = 0;
    for (size_t h = segment.size() - 1; h > 0; --h) {
      if (!transport.AttemptDelivers(timestep, segment[h], segment[h - 1],
                                     attempt)) {
        ack_ok = false;
        break;
      }
      ++ack_hops;
      result.heard.emplace(segment[h], segment[h - 1]);
      ack_delay += transport
                       .EffectsFor(timestep, segment[h], segment[h - 1],
                                   attempt)
                       .delay_ticks;
    }
    result.energy_mj += ack_hops * energy.UnicastHopUj(0) / 1000.0;
    if (track_node_energy) {
      for (int crossed = 0; crossed < ack_hops; ++crossed) {
        const size_t h = segment.size() - 1 - crossed;
        result.node_energy_mj[segment[h]] += energy.TxUj(0) / 1000.0;
        result.node_energy_mj[segment[h - 1]] += energy.RxUj(0) / 1000.0;
      }
    }
    if (ack_ok) {
      ack_delay = std::min(ack_delay, transport.max_delay_ticks());
      if (ack_delay <= 0) {
        apply_ack(index);
      } else {
        transfers[index].pending_events += 1;
        Event event;
        event.kind = Event::Kind::kAckArrive;
        event.index = index;
        event.attempt = attempt;
        event.origin = arrival_tick;
        agenda.Schedule(arrival_tick + ack_delay, event);
      }
    } else {
      result.energy_mj += energy.TxUj(0) / 1000.0;
      if (track_node_energy) {
        result.node_energy_mj[segment[segment.size() - 1 - ack_hops]] +=
            energy.TxUj(0) / 1000.0;
      }
      result.acks_lost += 1;
      if (metrics_ != nullptr) {
        metrics_->AddNode(handles_.acks_lost, sender, 1);
      }
    }
    if (trace != nullptr) {
      trace->Send(arrival_tick, sender, packet_recipient, message_id,
                  attempt, payload, outcome, !ack_ok, 0);
    }
  };

  auto process_transmit = [&](size_t index, int tick) {
    const NodeId sender = transfers[index].sender;
    const int message_id = transfers[index].packet.local_message_id;
    const NodeId packet_recipient = transfers[index].packet.recipient;
    const std::vector<NodeId>& segment =
        fleet.node_message_segments(sender)[message_id];
    const int payload =
        static_cast<int>(transfers[index].packet.payload.size());
    const int attempt = ++transfers[index].attempts_made;
    result.attempts += 1;
    if (attempt > 1) result.retransmissions += 1;
    if (metrics_ != nullptr) {
      metrics_->AddNode(handles_.tx_attempts, sender, 1);
      metrics_->AddNode(handles_.tx_bytes, sender, payload);
      if (attempt > 1) metrics_->Add(handles_.retransmissions, 1);
    }

    int hops_crossed = 0;
    bool delivered = alive(packet_recipient);
    int data_delay = 0;
    bool dup = false;
    bool corrupt = false;
    uint32_t corrupt_bit = 0;
    if (delivered) {
      for (size_t h = 0; h + 1 < segment.size(); ++h) {
        if (!transport.AttemptDelivers(timestep, segment[h], segment[h + 1],
                                       attempt)) {
          delivered = false;
          break;
        }
        ++hops_crossed;
        if (metrics_ != nullptr) {
          metrics_->AddEdge(handles_.hop_transmissions, segment[h],
                            segment[h + 1], 1);
        }
        result.heard.emplace(segment[h], segment[h + 1]);
        HopEffects effects =
            transport.EffectsFor(timestep, segment[h], segment[h + 1],
                                 attempt);
        data_delay += effects.delay_ticks;
        if (effects.duplicate) dup = true;
        if (effects.corrupt && !corrupt) {
          corrupt = true;
          corrupt_bit = effects.corrupt_bit;
        }
      }
    }
    result.energy_mj += hops_crossed * energy.UnicastHopUj(payload) / 1000.0;
    if (track_node_energy) {
      for (int h = 0; h < hops_crossed; ++h) {
        result.node_energy_mj[segment[h]] += energy.TxUj(payload) / 1000.0;
        result.node_energy_mj[segment[h + 1]] +=
            energy.RxUj(payload) / 1000.0;
      }
    }
    if (!delivered && hops_crossed + 2 <= static_cast<int>(segment.size())) {
      result.energy_mj += energy.TxUj(payload) / 1000.0;
      if (track_node_energy) {
        result.node_energy_mj[segment[hops_crossed]] +=
            energy.TxUj(payload) / 1000.0;
      }
    }

    if (delivered) {
      data_delay = std::min(data_delay, transport.max_delay_ticks());
      if (data_delay <= 0) {
        process_arrival(index, attempt, tick, corrupt, corrupt_bit,
                        /*is_dup=*/false);
      } else {
        transfers[index].pending_events += 1;
        Event event;
        event.kind = Event::Kind::kDeliver;
        event.index = index;
        event.attempt = attempt;
        event.corrupt = corrupt;
        event.corrupt_bit = corrupt_bit;
        event.origin = tick;
        agenda.Schedule(tick + data_delay, event);
      }
      if (dup) {
        transfers[index].pending_events += 1;
        Event event;
        event.kind = Event::Kind::kDeliver;
        event.index = index;
        event.attempt = attempt;
        event.corrupt = corrupt;
        event.corrupt_bit = corrupt_bit;
        event.is_dup = true;
        event.origin = tick;
        agenda.Schedule(tick + data_delay + 1, event);
      }
    } else {
      obs::SendOutcome outcome = alive(packet_recipient)
                                     ? obs::SendOutcome::kDropped
                                     : obs::SendOutcome::kDeadRecipient;
      if (trace != nullptr) {
        trace->Send(tick, sender, packet_recipient, message_id, attempt,
                    payload, outcome, false,
                    outcome == obs::SendOutcome::kDropped ? hops_crossed + 1
                                                          : 0);
      }
    }

    if (!transfers[index].acked && !transfers[index].done &&
        attempt < retry.max_attempts) {
      const int64_t timeout = retry.BackoffWaitTicks(attempt);
      transfers[index].pending_retransmits += 1;
      Event event;
      event.index = index;
      event.retransmit = true;
      event.origin = tick;
      agenda.Schedule(tick + static_cast<int>(timeout), event);
      if (metrics_ != nullptr) {
        metrics_->Add(handles_.backoff_wait_ticks, timeout);
      }
    }
    maybe_finalize(index, tick);
  };

  auto process_event = [&](const Event& event, int tick) {
    switch (event.kind) {
      case Event::Kind::kTransmit:
        if (event.retransmit) {
          transfers[event.index].pending_retransmits -= 1;
          if (transfers[event.index].acked || transfers[event.index].done) {
            maybe_finalize(event.index, tick);
            break;
          }
        }
        process_transmit(event.index, tick);
        break;
      case Event::Kind::kDeliver:
        transfers[event.index].pending_events -= 1;
        process_arrival(event.index, event.attempt, tick, event.corrupt,
                        event.corrupt_bit, event.is_dup);
        maybe_finalize(event.index, tick);
        break;
      case Event::Kind::kAckArrive:
        transfers[event.index].pending_events -= 1;
        apply_ack(event.index);
        maybe_finalize(event.index, tick);
        break;
    }
  };

  // Round start: alive nodes start in node-id order — the serial merge
  // order of the round runtime.
  for (NodeId n = 0; n < node_count; ++n) {
    if (!alive(n)) continue;
    for (NodeRuntime::OutgoingPacket& packet :
         handlers[n].HandleTimestepStart(readings[n])) {
      transfers.push_back(
          Transfer{n, std::move(packet), fleet.node_runtime(n).plan_epoch()});
      Event event;
      event.index = transfers.size() - 1;
      agenda.Schedule(0, event);
    }
  }

  int current_tick = -1;
  while (!agenda.empty()) {
    const int tick = static_cast<int>(*agenda.NextTime());
    if (tick != current_tick) {
      current_tick = tick;
      result.final_tick = tick;
      if (tick > evict_horizon_ticks) {
        const int evict_before =
            tick - static_cast<int>(evict_horizon_ticks);
        for (NodeId n = 0; n < node_count; ++n) {
          fleet.mutable_node_runtime(n).EvictSeenPacketsBefore(evict_before);
        }
      }
    }
    std::optional<EventQueue<Event>::Fired> fired = agenda.Pop();
    if (!fired.has_value()) break;
    if (event_metrics_ != nullptr) {
      event_metrics_->Add(event_handles_.events_processed, 1);
      event_metrics_->Observe(event_handles_.queue_depth,
                              static_cast<int64_t>(agenda.size()));
      event_metrics_->Observe(event_handles_.handler_latency_ticks,
                              tick - fired->payload.origin);
    }
    process_event(fired->payload, tick);
  }
  if (metrics_ != nullptr) {
    metrics_->Observe(handles_.round_ticks, result.final_tick);
  }

  // Coverage tail — identical to the round runtime's.
  std::map<NodeId, std::set<NodeId>> expected_sources;
  std::map<NodeId, uint32_t> destination_epoch;
  for (NodeId n = 0; n < node_count; ++n) {
    const NodeRuntime& node = fleet.node_runtime(n);
    if (node.is_destination() && alive(node.id())) {
      destination_epoch[node.id()] = node.plan_epoch();
    }
  }
  for (NodeId n = 0; n < node_count; ++n) {
    const NodeRuntime& node = fleet.node_runtime(n);
    for (const PreAggTableEntry& entry : node.decoded().state.preagg_table) {
      auto it = destination_epoch.find(entry.destination);
      if (it == destination_epoch.end()) continue;
      if (node.plan_epoch() != it->second) continue;
      expected_sources[entry.destination].insert(entry.source);
    }
  }

  bool any_degraded = false;
  for (NodeId n = 0; n < node_count; ++n) {
    const NodeRuntime& node = fleet.node_runtime(n);
    if (!node.is_destination() || !alive(node.id())) continue;
    std::optional<double> value = node.FinalValue();
    if (value.has_value()) {
      result.destination_values[node.id()] = *value;
      result.destination_epochs[node.id()] = node.plan_epoch();
    } else {
      result.incomplete_destinations.push_back(node.id());
    }
    std::optional<NodeRuntime::CoverageReport> report =
        node.DestinationCoverage();
    if (!report.has_value()) continue;
    RuntimeNetwork::LossyResult::DestinationCoverage coverage;
    const std::set<NodeId>& expected = expected_sources[node.id()];
    coverage.expected = static_cast<int>(expected.size());
    coverage.covered = static_cast<int>(report->summary.count);
    coverage.coverage =
        coverage.expected > 0
            ? std::min(1.0, static_cast<double>(coverage.covered) /
                                coverage.expected)
            : 1.0;
    coverage.complete = coverage.covered == coverage.expected;
    coverage.exact_known = report->summary.exact_known;
    coverage.xor_fold = report->summary.xor_fold;
    coverage.sources = report->summary.sources;
    if (!value.has_value()) {
      any_degraded = true;
      if (report->degraded_value.has_value()) {
        result.degraded_values[node.id()] = *report->degraded_value;
      }
    }
    if (metrics_ != nullptr) {
      metrics_->Observe(
          handles_.coverage_per_destination,
          static_cast<int64_t>(coverage.coverage * 100.0 + 0.5));
    }
    result.destination_coverage[node.id()] = std::move(coverage);
  }
  if (any_degraded && metrics_ != nullptr) {
    metrics_->Add(handles_.coverage_degraded_rounds, 1);
  }
  return result;
}

EventNetwork::PipelineResult EventNetwork::RunPipelined(
    const std::vector<std::vector<double>>& readings_per_timestep,
    const Transport& transport, const PipelineOptions& options) {
  RuntimeNetwork& fleet = *fleet_;
  const int node_count = fleet.node_count();
  const int timestep_count = static_cast<int>(readings_per_timestep.size());
  const RetryPolicy& retry = options.retry;
  M2M_CHECK_GE(options.timestep_interval_ticks, 1);
  M2M_CHECK_GE(retry.max_attempts, 1);
  M2M_CHECK_GE(retry.ack_timeout_ticks, 1);
  M2M_CHECK_GE(retry.backoff_factor, 1);
  M2M_CHECK_GE(retry.max_backoff_ticks, retry.ack_timeout_ticks);
  for (const std::vector<double>& readings : readings_per_timestep) {
    M2M_CHECK_EQ(readings.size(), static_cast<size_t>(node_count));
  }
  std::vector<VirtualClock> clocks(static_cast<size_t>(node_count));
  if (!options.clocks.empty()) {
    M2M_CHECK_EQ(options.clocks.size(), static_cast<size_t>(node_count));
    for (int n = 0; n < node_count; ++n) {
      clocks[static_cast<size_t>(n)] = VirtualClock(options.clocks[n]);
    }
  }

  PipelineResult result;
  result.timesteps.resize(static_cast<size_t>(timestep_count));

  struct PTransfer {
    NodeId sender = kInvalidNode;
    NodeRuntime::OutgoingPacket packet;
    uint32_t epoch = 0;
    int attempts_made = 0;
    bool delivered_once = false;
    bool acked = false;
    bool done = false;
    int pending_events = 0;
    int pending_retransmits = 0;
    EventId retransmit_timer;
  };
  struct PEvent {
    enum class Kind : uint8_t { kStart, kTransmit, kDeliver, kAckArrive };
    Kind kind = Kind::kTransmit;
    int timestep = 0;
    NodeId node = kInvalidNode;  ///< kStart only.
    size_t index = 0;
    int attempt = 0;
    bool retransmit = false;
    bool is_dup = false;
    bool corrupt = false;
    uint32_t corrupt_bit = 0;
    int64_t origin = 0;
  };
  // Every timestep runs on its own clones of the fleet's node runtimes, so
  // overlapping timesteps never share mutable round state; clones are
  // freed at retirement, keeping live memory proportional to the pipeline
  // depth rather than the sweep length.
  struct TimestepRun {
    std::vector<NodeRuntime> nodes;
    std::vector<EventNodeRuntime> handlers;
    std::vector<PTransfer> transfers;
    size_t done_count = 0;
    int started_count = 0;
    int alive_count = 0;
    /// Outstanding deliveries, acks and retransmit timers for this
    /// timestep; retirement requires zero (a late channel duplicate must
    /// still find its recipient's clone alive).
    int64_t pending_total = 0;
    bool live = false;
    bool retired = false;
  };
  std::vector<TimestepRun> runs(static_cast<size_t>(timestep_count));

  EventQueue<PEvent> queue;
  int in_flight = 0;

  for (int t = 0; t < timestep_count; ++t) {
    TimestepRun& run = runs[static_cast<size_t>(t)];
    run.nodes.reserve(static_cast<size_t>(node_count));
    for (NodeId n = 0; n < node_count; ++n) {
      run.nodes.push_back(fleet.node_runtime(n));
    }
    run.handlers.reserve(static_cast<size_t>(node_count));
    for (NodeId n = 0; n < node_count; ++n) {
      run.handlers.emplace_back(&run.nodes[static_cast<size_t>(n)],
                                clocks[static_cast<size_t>(n)]);
    }
    for (NodeId n = 0; n < node_count; ++n) {
      if (!transport.NodeAlive(t, n)) continue;
      run.alive_count += 1;
      // Node n starts timestep t when its *local* clock reads the release
      // time; drift scatters these onto different global ticks.
      const int64_t local_release =
          static_cast<int64_t>(t) * options.timestep_interval_ticks;
      const int64_t start_tick =
          clocks[static_cast<size_t>(n)].GlobalFor(local_release);
      PEvent event;
      event.kind = PEvent::Kind::kStart;
      event.timestep = t;
      event.node = n;
      event.origin = start_tick;
      queue.Schedule(start_tick, event);
    }
    if (run.alive_count == 0) {
      run.retired = true;
      run.nodes.clear();
      run.handlers.clear();
    }
  }

  auto maybe_retire = [&](int t, int64_t tick) {
    TimestepRun& run = runs[static_cast<size_t>(t)];
    if (run.retired) return;
    if (run.started_count < run.alive_count) return;
    if (run.done_count < run.transfers.size()) return;
    if (run.pending_total != 0) return;
    run.retired = true;
    PipelineResult::Timestep& stats = result.timesteps[static_cast<size_t>(t)];
    stats.retire_tick = tick;
    for (NodeId n = 0; n < node_count; ++n) {
      const NodeRuntime& node = run.nodes[static_cast<size_t>(n)];
      if (!node.is_destination() || !transport.NodeAlive(t, n)) continue;
      std::optional<double> value = node.FinalValue();
      if (value.has_value()) {
        stats.destination_values[n] = *value;
      } else {
        stats.incomplete_destinations.push_back(n);
      }
    }
    if (run.live) {
      run.live = false;
      in_flight -= 1;
      if (event_metrics_ != nullptr && in_flight > 0) {
        event_metrics_->Observe(event_handles_.pipeline_occupancy, in_flight);
      }
    }
    run.nodes.clear();
    run.handlers.clear();
    run.transfers.clear();
  };
  auto maybe_finalize = [&](int t, size_t index, int64_t tick) {
    TimestepRun& run = runs[static_cast<size_t>(t)];
    PTransfer& tr = run.transfers[index];
    if (tr.done) return;
    if (tr.acked) {
      tr.done = true;
      run.done_count += 1;
    } else if (tr.attempts_made >= retry.max_attempts &&
               tr.pending_events == 0 && tr.pending_retransmits == 0) {
      tr.done = true;
      run.done_count += 1;
      if (!tr.delivered_once) {
        result.timesteps[static_cast<size_t>(t)].messages_abandoned += 1;
      }
    }
    (void)tick;
  };
  auto add_transfer = [&](int t, NodeId sender,
                          NodeRuntime::OutgoingPacket packet, int64_t tick,
                          int64_t launch_tick) {
    TimestepRun& run = runs[static_cast<size_t>(t)];
    run.transfers.push_back(
        PTransfer{sender, std::move(packet),
                  run.nodes[static_cast<size_t>(sender)].plan_epoch()});
    PEvent event;
    event.kind = PEvent::Kind::kTransmit;
    event.timestep = t;
    event.index = run.transfers.size() - 1;
    event.origin = tick;
    queue.Schedule(launch_tick, event);
  };

  auto handle_start = [&](const PEvent& e, int64_t tick) {
    TimestepRun& run = runs[static_cast<size_t>(e.timestep)];
    PipelineResult::Timestep& stats =
        result.timesteps[static_cast<size_t>(e.timestep)];
    if (!run.live) {
      run.live = true;
      in_flight += 1;
      result.max_in_flight = std::max(result.max_in_flight, in_flight);
      if (event_metrics_ != nullptr) {
        event_metrics_->Observe(event_handles_.pipeline_occupancy, in_flight);
      }
      if (stats.start_tick < 0) stats.start_tick = tick;
    }
    std::vector<NodeRuntime::OutgoingPacket> packets =
        run.handlers[static_cast<size_t>(e.node)].HandleTimestepStart(
            readings_per_timestep[static_cast<size_t>(e.timestep)]
                                 [static_cast<size_t>(e.node)]);
    run.started_count += 1;
    for (NodeRuntime::OutgoingPacket& packet : packets) {
      add_transfer(e.timestep, e.node, std::move(packet), tick, tick);
    }
    maybe_retire(e.timestep, tick);
  };

  auto handle_transmit = [&](const PEvent& e, int64_t tick) {
    const int t = e.timestep;
    TimestepRun& run = runs[static_cast<size_t>(t)];
    PipelineResult::Timestep& stats = result.timesteps[static_cast<size_t>(t)];
    if (e.retransmit) {
      PTransfer& tr = run.transfers[e.index];
      tr.pending_retransmits -= 1;
      run.pending_total -= 1;
      tr.retransmit_timer = EventId{};
      if (tr.acked || tr.done) {
        maybe_finalize(t, e.index, tick);
        maybe_retire(t, tick);
        return;
      }
    }
    const NodeId sender = run.transfers[e.index].sender;
    const int message_id = run.transfers[e.index].packet.local_message_id;
    const NodeId recipient = run.transfers[e.index].packet.recipient;
    const std::vector<NodeId>& segment =
        fleet.node_message_segments(sender)[message_id];
    const int attempt = ++run.transfers[e.index].attempts_made;
    stats.attempts += 1;
    if (attempt > 1) stats.retransmissions += 1;

    bool delivered = transport.NodeAlive(t, recipient);
    int64_t path_latency = 0;
    int data_delay = 0;
    bool dup = false;
    bool corrupt = false;
    uint32_t corrupt_bit = 0;
    if (delivered) {
      for (size_t h = 0; h + 1 < segment.size(); ++h) {
        if (!transport.AttemptDelivers(t, segment[h], segment[h + 1],
                                       attempt)) {
          delivered = false;
          break;
        }
        path_latency += std::max<int64_t>(
            1, transport.HopLatencyTicks(segment[h], segment[h + 1]));
        HopEffects effects =
            transport.EffectsFor(t, segment[h], segment[h + 1], attempt);
        data_delay += effects.delay_ticks;
        if (effects.duplicate) dup = true;
        if (effects.corrupt && !corrupt) {
          corrupt = true;
          corrupt_bit = effects.corrupt_bit;
        }
      }
    }
    if (delivered) {
      data_delay = std::min(data_delay, transport.max_delay_ticks());
      const int64_t arrival = tick + path_latency + data_delay;
      run.transfers[e.index].pending_events += 1;
      run.pending_total += 1;
      PEvent deliver;
      deliver.kind = PEvent::Kind::kDeliver;
      deliver.timestep = t;
      deliver.index = e.index;
      deliver.attempt = attempt;
      deliver.corrupt = corrupt;
      deliver.corrupt_bit = corrupt_bit;
      deliver.origin = tick;
      queue.Schedule(arrival, deliver);
      if (dup) {
        run.transfers[e.index].pending_events += 1;
        run.pending_total += 1;
        PEvent spontaneous = deliver;
        spontaneous.is_dup = true;
        queue.Schedule(arrival + 1, spontaneous);
      }
    }
    PTransfer& tr = run.transfers[e.index];
    if (!tr.acked && !tr.done && attempt < retry.max_attempts) {
      tr.pending_retransmits += 1;
      run.pending_total += 1;
      PEvent rt;
      rt.kind = PEvent::Kind::kTransmit;
      rt.timestep = t;
      rt.index = e.index;
      rt.retransmit = true;
      rt.origin = tick;
      tr.retransmit_timer =
          queue.Schedule(tick + retry.BackoffWaitTicks(attempt), rt);
    }
    maybe_finalize(t, e.index, tick);
    maybe_retire(t, tick);
  };

  auto handle_deliver = [&](const PEvent& e, int64_t tick) {
    const int t = e.timestep;
    TimestepRun& run = runs[static_cast<size_t>(t)];
    PipelineResult::Timestep& stats = result.timesteps[static_cast<size_t>(t)];
    run.transfers[e.index].pending_events -= 1;
    run.pending_total -= 1;
    const NodeId sender = run.transfers[e.index].sender;
    const int message_id = run.transfers[e.index].packet.local_message_id;
    const NodeId recipient = run.transfers[e.index].packet.recipient;
    const std::vector<NodeId>& segment =
        fleet.node_message_segments(sender)[message_id];

    if (e.corrupt) {
      std::vector<uint8_t> frame =
          wire::FrameWithCrc32(run.transfers[e.index].packet.payload);
      size_t bit = e.corrupt_bit % (frame.size() * 8);
      frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      if (!wire::TryOpenCrc32Frame(frame).has_value()) {
        stats.corrupt_frames += 1;
        maybe_finalize(t, e.index, tick);
        maybe_retire(t, tick);
        return;
      }
    }
    stats.deliveries += 1;
    EventNodeRuntime::MessageResult received =
        run.handlers[static_cast<size_t>(recipient)].HandleMessage(
            sender, message_id, run.transfers[e.index].epoch,
            run.transfers[e.index].packet.payload, static_cast<int>(tick));
    if (received.buffered) {
      // The recipient's local clock has not released this timestep yet; the
      // link layer accepted the frame into the mailbox, so it acks below
      // and the sender stops retrying.
      stats.buffered_prestart += 1;
      run.transfers[e.index].delivered_once = true;
    } else {
      switch (received.outcome) {
        case NodeRuntime::ReceiveOutcome::kFresh:
          run.transfers[e.index].delivered_once = true;
          for (NodeRuntime::OutgoingPacket& packet : received.emitted) {
            add_transfer(t, recipient, std::move(packet), tick, tick + 1);
          }
          break;
        case NodeRuntime::ReceiveOutcome::kDuplicate:
          stats.duplicates += 1;
          break;
        case NodeRuntime::ReceiveOutcome::kEpochMismatch:
          run.transfers[e.index].delivered_once = true;
          break;
      }
    }
    bool ack_ok = true;
    int64_t ack_latency = 0;
    int ack_delay = 0;
    for (size_t h = segment.size() - 1; h > 0; --h) {
      if (!transport.AttemptDelivers(t, segment[h], segment[h - 1],
                                     e.attempt)) {
        ack_ok = false;
        break;
      }
      ack_latency += std::max<int64_t>(
          1, transport.HopLatencyTicks(segment[h], segment[h - 1]));
      ack_delay +=
          transport.EffectsFor(t, segment[h], segment[h - 1], e.attempt)
              .delay_ticks;
    }
    if (ack_ok) {
      ack_delay = std::min(ack_delay, transport.max_delay_ticks());
      run.transfers[e.index].pending_events += 1;
      run.pending_total += 1;
      PEvent ack;
      ack.kind = PEvent::Kind::kAckArrive;
      ack.timestep = t;
      ack.index = e.index;
      ack.attempt = e.attempt;
      ack.origin = tick;
      queue.Schedule(tick + ack_latency + ack_delay, ack);
    }
    maybe_finalize(t, e.index, tick);
    maybe_retire(t, tick);
  };

  auto handle_ack = [&](const PEvent& e, int64_t tick) {
    const int t = e.timestep;
    TimestepRun& run = runs[static_cast<size_t>(t)];
    PTransfer& tr = run.transfers[e.index];
    tr.pending_events -= 1;
    run.pending_total -= 1;
    if (!tr.acked) {
      tr.acked = true;
      // Exact timer cancellation: the pending retransmission will now
      // never fire (and its heap entry is reclaimed), instead of firing as
      // a skipped no-op the way the round-compat path models it.
      if (tr.retransmit_timer.valid() &&
          queue.Cancel(tr.retransmit_timer)) {
        tr.pending_retransmits -= 1;
        run.pending_total -= 1;
        result.retransmit_timers_cancelled += 1;
        if (event_metrics_ != nullptr) {
          event_metrics_->Add(event_handles_.timers_cancelled, 1);
        }
      }
      tr.retransmit_timer = EventId{};
    }
    maybe_finalize(t, e.index, tick);
    maybe_retire(t, tick);
  };

  while (!queue.empty()) {
    std::optional<EventQueue<PEvent>::Fired> fired = queue.Pop();
    if (!fired.has_value()) break;
    const int64_t tick = fired->time;
    result.final_tick = tick;
    result.events_processed += 1;
    if (event_metrics_ != nullptr) {
      event_metrics_->Add(event_handles_.events_processed, 1);
      event_metrics_->Observe(event_handles_.queue_depth,
                              static_cast<int64_t>(queue.size()));
      event_metrics_->Observe(event_handles_.handler_latency_ticks,
                              tick - fired->payload.origin);
    }
    switch (fired->payload.kind) {
      case PEvent::Kind::kStart:
        handle_start(fired->payload, tick);
        break;
      case PEvent::Kind::kTransmit:
        handle_transmit(fired->payload, tick);
        break;
      case PEvent::Kind::kDeliver:
        handle_deliver(fired->payload, tick);
        break;
      case PEvent::Kind::kAckArrive:
        handle_ack(fired->payload, tick);
        break;
    }
  }
  return result;
}

}  // namespace m2m::event
