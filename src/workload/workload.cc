#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

std::vector<NodeId> Workload::DistinctSources() const {
  std::set<NodeId> out;
  for (const Task& task : tasks) {
    out.insert(task.sources.begin(), task.sources.end());
  }
  return {out.begin(), out.end()};
}

void Workload::RebuildFunctions() {
  M2M_CHECK_EQ(tasks.size(), specs.size());
  functions = FunctionSet();
  for (size_t i = 0; i < tasks.size(); ++i) {
    // The spec's weight keys are the task's source list.
    std::vector<NodeId> spec_sources;
    spec_sources.reserve(specs[i].weights.size());
    for (const auto& [s, w] : specs[i].weights) spec_sources.push_back(s);
    std::sort(spec_sources.begin(), spec_sources.end());
    std::vector<NodeId> task_sources = tasks[i].sources;
    std::sort(task_sources.begin(), task_sources.end());
    M2M_CHECK(spec_sources == task_sources)
        << "spec/task source mismatch for destination "
        << tasks[i].destination;
    functions.Set(tasks[i].destination, MakeAggregateFunction(specs[i]));
  }
}

namespace {

// Picks `count` sources for `destination` using the dispersion model.
std::vector<NodeId> PickDispersedSources(const Topology& topology,
                                         NodeId destination, int count,
                                         double dispersion, int max_hops,
                                         Rng& rng) {
  std::vector<int> hop_distance = topology.HopDistancesFrom(destination);
  // Unused candidate nodes bucketed by hop distance 1..max_hops, plus a
  // spill bucket (index 0) of everything else (farther nodes).
  std::vector<std::vector<NodeId>> buckets(max_hops + 1);
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n == destination || hop_distance[n] < 0) continue;
    int h = hop_distance[n];
    if (h >= 1 && h <= max_hops) {
      buckets[h].push_back(n);
    } else {
      buckets[0].push_back(n);
    }
  }
  for (auto& bucket : buckets) rng.Shuffle(bucket);

  // Relative mass at hop h: dispersion^(h-1), with 0^0 = 1.
  std::vector<double> mass(max_hops + 1, 0.0);
  for (int h = 1; h <= max_hops; ++h) {
    mass[h] = (h == 1) ? 1.0 : std::pow(dispersion, h - 1);
  }

  std::vector<NodeId> chosen;
  chosen.reserve(count);
  for (int k = 0; k < count; ++k) {
    // Zero out empty buckets before sampling.
    std::vector<double> available_mass = mass;
    double total = 0.0;
    for (int h = 1; h <= max_hops; ++h) {
      if (buckets[h].empty()) available_mass[h] = 0.0;
      total += available_mass[h];
    }
    int pick_bucket = -1;
    if (total > 0.0) {
      pick_bucket = static_cast<int>(rng.SampleDiscrete(available_mass));
    } else {
      // Every bucket with probability mass is exhausted; fall back to the
      // nearest non-empty in-range bucket, then to nodes beyond max_hops.
      for (int h = 1; h <= max_hops; ++h) {
        if (!buckets[h].empty()) {
          pick_bucket = h;
          break;
        }
      }
      if (pick_bucket < 0) {
        M2M_CHECK(!buckets[0].empty())
            << "network too small for " << count << " sources";
        pick_bucket = 0;
      }
    }
    chosen.push_back(buckets[pick_bucket].back());
    buckets[pick_bucket].pop_back();
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<NodeId> PickUniformSources(const Topology& topology,
                                       NodeId destination, int count,
                                       Rng& rng) {
  std::vector<NodeId> candidates;
  candidates.reserve(topology.node_count() - 1);
  for (NodeId n = 0; n < topology.node_count(); ++n) {
    if (n != destination) candidates.push_back(n);
  }
  M2M_CHECK_LE(static_cast<size_t>(count), candidates.size())
      << "network too small for " << count << " sources";
  rng.Shuffle(candidates);
  candidates.resize(count);
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

}  // namespace

Workload GenerateWorkload(const Topology& topology,
                          const WorkloadSpec& spec) {
  M2M_CHECK_GT(spec.destination_count, 0);
  M2M_CHECK_LE(spec.destination_count, topology.node_count());
  M2M_CHECK_GT(spec.sources_per_destination, 0);
  M2M_CHECK_GE(spec.dispersion, 0.0);
  M2M_CHECK_LE(spec.dispersion, 1.0);
  M2M_CHECK_GE(spec.max_hops, 1);
  M2M_CHECK_LE(spec.weight_min, spec.weight_max);

  Rng rng(spec.seed);
  // Destinations without replacement.
  std::vector<NodeId> all_nodes(topology.node_count());
  for (NodeId n = 0; n < topology.node_count(); ++n) all_nodes[n] = n;
  rng.Shuffle(all_nodes);
  std::vector<NodeId> destinations(
      all_nodes.begin(), all_nodes.begin() + spec.destination_count);
  std::sort(destinations.begin(), destinations.end());

  Workload workload;
  for (NodeId d : destinations) {
    Rng task_rng = rng.Fork(static_cast<uint64_t>(d));
    std::vector<NodeId> sources =
        spec.selection == SourceSelection::kDispersion
            ? PickDispersedSources(topology, d, spec.sources_per_destination,
                                   spec.dispersion, spec.max_hops, task_rng)
            : PickUniformSources(topology, d, spec.sources_per_destination,
                                 task_rng);
    FunctionSpec function_spec;
    function_spec.kind = spec.kind;
    for (NodeId s : sources) {
      function_spec.weights.emplace_back(
          s, task_rng.UniformDouble(spec.weight_min, spec.weight_max));
    }
    workload.tasks.push_back(Task{d, std::move(sources)});
    workload.specs.push_back(std::move(function_spec));
  }
  workload.RebuildFunctions();
  return workload;
}

Workload WithSourceAdded(const Workload& workload, NodeId source,
                         NodeId destination, double weight) {
  Workload out = workload;
  bool found = false;
  for (size_t i = 0; i < out.tasks.size(); ++i) {
    if (out.tasks[i].destination != destination) continue;
    found = true;
    M2M_CHECK(std::find(out.tasks[i].sources.begin(),
                        out.tasks[i].sources.end(),
                        source) == out.tasks[i].sources.end())
        << "source " << source << " already present";
    out.tasks[i].sources.push_back(source);
    std::sort(out.tasks[i].sources.begin(), out.tasks[i].sources.end());
    out.specs[i].weights.emplace_back(source, weight);
  }
  M2M_CHECK(found) << "no task for destination " << destination;
  out.RebuildFunctions();
  return out;
}

Workload WithSourceRemoved(const Workload& workload, NodeId source,
                           NodeId destination) {
  Workload out = workload;
  bool found = false;
  for (size_t i = 0; i < out.tasks.size(); ++i) {
    if (out.tasks[i].destination != destination) continue;
    auto it = std::find(out.tasks[i].sources.begin(),
                        out.tasks[i].sources.end(), source);
    M2M_CHECK(it != out.tasks[i].sources.end())
        << "source " << source << " not present";
    out.tasks[i].sources.erase(it);
    M2M_CHECK(!out.tasks[i].sources.empty())
        << "removal would leave destination " << destination
        << " with no sources";
    auto& weights = out.specs[i].weights;
    weights.erase(std::remove_if(weights.begin(), weights.end(),
                                 [source](const auto& entry) {
                                   return entry.first == source;
                                 }),
                  weights.end());
    found = true;
  }
  M2M_CHECK(found) << "no task for destination " << destination;
  out.RebuildFunctions();
  return out;
}

}  // namespace m2m
