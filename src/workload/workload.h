#ifndef M2M_WORKLOAD_WORKLOAD_H_
#define M2M_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate_function.h"
#include "common/relation.h"
#include "topology/topology.h"

namespace m2m {

/// How a destination's sources are drawn.
enum class SourceSelection {
  /// The paper's dispersion model (Figure 5): a source's hop distance h from
  /// the destination is drawn with probability proportional to d^(h-1) for
  /// h in 1..max_hops, then a concrete node at that distance is picked
  /// uniformly among unused ones. d = 0 keeps all sources within one hop;
  /// d = 1 spreads them evenly over 1..max_hops.
  kDispersion,
  /// Uniform over all nodes except the destination (Figure 6's "15% of all
  /// nodes as sources").
  kUniform,
};

/// Declarative workload description; all figures' workloads are instances.
struct WorkloadSpec {
  int destination_count = 0;
  int sources_per_destination = 0;
  SourceSelection selection = SourceSelection::kDispersion;
  double dispersion = 0.9;  ///< d; used by kDispersion.
  int max_hops = 4;         ///< H; used by kDispersion.
  AggregateKind kind = AggregateKind::kWeightedAverage;
  /// Per-source weights are drawn uniformly from [weight_min, weight_max].
  double weight_min = 0.5;
  double weight_max = 1.5;
  uint64_t seed = 1;
};

/// A concrete many-to-many aggregation workload: the producer-consumer
/// relation plus each destination's aggregation function. `specs[i]`
/// describes the function of `tasks[i]`'s destination; `functions` holds the
/// built instances.
struct Workload {
  std::vector<Task> tasks;
  std::vector<FunctionSpec> specs;
  FunctionSet functions;

  /// Distinct sources across all tasks, ascending.
  std::vector<NodeId> DistinctSources() const;

  /// Rebuilds `functions` from `tasks`/`specs` (call after editing specs).
  void RebuildFunctions();
};

/// Draws a workload over `topology` per `spec`. Destinations are sampled
/// without replacement; a destination is never its own source. When a hop
/// bucket runs out of unused nodes, the draw falls back to the nearest
/// non-empty bucket (and, as a last resort, to any unused node), so the
/// requested source count is always met when the network is large enough.
Workload GenerateWorkload(const Topology& topology, const WorkloadSpec& spec);

/// Returns a copy of `workload` with `source` added to `destination`'s task
/// with the given weight; used by the dynamic-update experiments.
Workload WithSourceAdded(const Workload& workload, NodeId source,
                         NodeId destination, double weight);

/// Returns a copy with `source` removed from `destination`'s task.
Workload WithSourceRemoved(const Workload& workload, NodeId source,
                           NodeId destination);

}  // namespace m2m

#endif  // M2M_WORKLOAD_WORKLOAD_H_
