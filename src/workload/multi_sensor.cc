#include "workload/multi_sensor.h"

#include "common/check.h"

namespace m2m {

namespace {

Topology Expand(const Topology& base, const std::vector<SensorSpec>& sensors) {
  std::vector<Point> positions = base.positions();
  for (const SensorSpec& sensor : sensors) {
    M2M_CHECK(sensor.host >= 0 && sensor.host < base.node_count())
        << "sensor host " << sensor.host << " out of range";
    positions.push_back(base.position(sensor.host));
  }
  return Topology(std::move(positions), base.radio_range_m());
}

}  // namespace

MultiSensorNetwork::MultiSensorNetwork(const Topology& base,
                                       const std::vector<SensorSpec>& sensors)
    : base_count_(base.node_count()), expanded_(Expand(base, sensors)) {
  hosts_.reserve(sensors.size());
  for (const SensorSpec& sensor : sensors) hosts_.push_back(sensor.host);
}

NodeId MultiSensorNetwork::sensor_id(int sensor_index) const {
  M2M_CHECK(sensor_index >= 0 &&
            sensor_index < static_cast<int>(hosts_.size()));
  return base_count_ + sensor_index;
}

NodeId MultiSensorNetwork::HostOf(NodeId id) const {
  M2M_CHECK(id >= 0 && id < expanded_.node_count());
  if (id < base_count_) return id;
  return hosts_[id - base_count_];
}

bool MultiSensorNetwork::IsVirtual(NodeId id) const {
  M2M_CHECK(id >= 0 && id < expanded_.node_count());
  return id >= base_count_;
}

bool MultiSensorNetwork::IsLocalBusLink(NodeId a, NodeId b) const {
  if (!IsVirtual(a) && !IsVirtual(b)) return false;
  return HostOf(a) == HostOf(b);
}

}  // namespace m2m
