#ifndef M2M_WORKLOAD_MULTI_SENSOR_H_
#define M2M_WORKLOAD_MULTI_SENSOR_H_

#include <vector>

#include "common/ids.h"
#include "topology/topology.h"

namespace m2m {

/// The paper assumes one reading per node — and at most one aggregation
/// function per destination — "for simplicity of presentation", noting both
/// generalizations are straightforward (§2.1). We realize them without
/// touching the planner: each extra sensor (or extra function slot at a
/// destination) becomes a *virtual node* co-located with its host.
/// Virtual nodes inherit the host's radio neighborhood (zero distance), and
/// the virtual-to-host link is a local bus — reading a co-located sensor
/// costs no radio energy, which the executor honors via a free-link
/// predicate.
struct SensorSpec {
  NodeId host = kInvalidNode;
};

class MultiSensorNetwork {
 public:
  /// Expands `base` with one virtual node per extra sensor.
  MultiSensorNetwork(const Topology& base,
                     const std::vector<SensorSpec>& sensors);

  MultiSensorNetwork(const MultiSensorNetwork&) = default;
  MultiSensorNetwork& operator=(const MultiSensorNetwork&) = default;

  const Topology& expanded_topology() const { return expanded_; }

  /// Virtual node id of the i-th extra sensor.
  NodeId sensor_id(int sensor_index) const;
  int extra_sensor_count() const { return static_cast<int>(hosts_.size()); }

  /// Host node of any id (identity for physical nodes).
  NodeId HostOf(NodeId id) const;
  bool IsVirtual(NodeId id) const;

  /// True iff the hop a->b is a local bus transfer (between co-located ids
  /// of the same host), which costs no radio energy.
  bool IsLocalBusLink(NodeId a, NodeId b) const;

 private:
  int base_count_ = 0;
  Topology expanded_;
  std::vector<NodeId> hosts_;  // Indexed by sensor index.
};

}  // namespace m2m

#endif  // M2M_WORKLOAD_MULTI_SENSOR_H_
