#include "lifecycle/admission.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "plan/tdma.h"

namespace m2m {

std::string ToString(AdmissionReason reason) {
  switch (reason) {
    case AdmissionReason::kAdmitted:
      return "admitted";
    case AdmissionReason::kDuplicateDestination:
      return "duplicate_destination";
    case AdmissionReason::kUnknownDestination:
      return "unknown_destination";
    case AdmissionReason::kDuplicateSource:
      return "duplicate_source";
    case AdmissionReason::kUnknownSource:
      return "unknown_source";
    case AdmissionReason::kEmptySourceSet:
      return "empty_source_set";
    case AdmissionReason::kInvalidNode:
      return "invalid_node";
    case AdmissionReason::kNoAliveSources:
      return "no_alive_sources";
    case AdmissionReason::kStateBound:
      return "state_bound";
    case AdmissionReason::kTdmaCapacity:
      return "tdma_capacity";
    case AdmissionReason::kEnergyBudget:
      return "energy_budget";
    case AdmissionReason::kBatteryLifetime:
      return "battery_lifetime";
    case AdmissionReason::kTenantUnknown:
      return "tenant_unknown";
    case AdmissionReason::kTenantQuota:
      return "tenant_quota";
    case AdmissionReason::kSharedQuery:
      return "shared_query";
  }
  return "unknown";
}

AdmissionDecision AdmissionDecision::Admit() {
  AdmissionDecision decision;
  decision.admitted = true;
  return decision;
}

AdmissionDecision AdmissionDecision::Reject(AdmissionReason reason,
                                            std::string detail) {
  M2M_CHECK(reason != AdmissionReason::kAdmitted);
  AdmissionDecision decision;
  decision.admitted = false;
  decision.reason = reason;
  decision.detail = std::move(detail);
  return decision;
}

std::vector<double> PerNodeRoundEnergyMj(const CompiledPlan& compiled,
                                         const FunctionSet& functions,
                                         const EnergyModel& energy) {
  (void)functions;  // Unit byte sizes are already baked into the schedule.
  std::vector<double> node_uj(compiled.node_count(), 0.0);
  const MessageSchedule& schedule = compiled.schedule();
  for (const MessageSchedule::Message& message : schedule.messages()) {
    int payload_bytes = 0;
    for (int u : message.unit_ids) {
      payload_bytes += schedule.units()[u].unit_bytes;
    }
    const ForestEdge& edge =
        compiled.plan().forest().edges()[message.edge_index];
    for (size_t hop = 0; hop + 1 < edge.segment.size(); ++hop) {
      node_uj[edge.segment[hop]] += energy.TxUj(payload_bytes);
      node_uj[edge.segment[hop + 1]] += energy.RxUj(payload_bytes);
    }
  }
  for (double& uj : node_uj) uj /= 1000.0;
  return node_uj;
}

AdmissionDecision CheckPlanBudgets(const CompiledPlan& compiled,
                                   const FunctionSet& functions,
                                   const Topology& topology,
                                   const AdmissionLimits& limits) {
  if (limits.state_bound_factor > 0.0) {
    const StateTotals totals = compiled.ComputeStateTotals();
    const int64_t reference = std::min(totals.sum_multicast_tree_sizes,
                                       totals.sum_aggregation_tree_sizes);
    const double bound =
        limits.state_bound_factor * static_cast<double>(reference);
    if (static_cast<double>(totals.total()) > bound) {
      std::ostringstream detail;
      detail << "Theorem 3 state bound: " << totals.total()
             << " table entries > " << limits.state_bound_factor
             << " * min(sum |T_s| = " << totals.sum_multicast_tree_sizes
             << ", sum |A_d| = " << totals.sum_aggregation_tree_sizes
             << ")";
      AdmissionDecision decision = AdmissionDecision::Reject(
          AdmissionReason::kStateBound, detail.str());
      decision.observed = static_cast<double>(totals.total());
      decision.limit = bound;
      return decision;
    }
  }
  if (limits.max_tdma_slots > 0) {
    const TdmaSchedule tdma = BuildTdmaSchedule(compiled, topology);
    if (tdma.slot_count > limits.max_tdma_slots) {
      std::ostringstream detail;
      detail << "TDMA round needs " << tdma.slot_count << " slots > budget "
             << limits.max_tdma_slots;
      AdmissionDecision decision = AdmissionDecision::Reject(
          AdmissionReason::kTdmaCapacity, detail.str());
      decision.observed = tdma.slot_count;
      decision.limit = limits.max_tdma_slots;
      return decision;
    }
  }
  if (limits.max_node_energy_mj > 0.0) {
    const std::vector<double> node_mj =
        PerNodeRoundEnergyMj(compiled, functions, limits.energy);
    for (NodeId node = 0; node < static_cast<NodeId>(node_mj.size());
         ++node) {
      if (node_mj[node] > limits.max_node_energy_mj) {
        std::ostringstream detail;
        detail << "node " << node << " would spend " << node_mj[node]
               << " mJ per round > budget " << limits.max_node_energy_mj;
        AdmissionDecision decision = AdmissionDecision::Reject(
            AdmissionReason::kEnergyBudget, detail.str());
        decision.offending_node = node;
        decision.observed = node_mj[node];
        decision.limit = limits.max_node_energy_mj;
        return decision;
      }
    }
  }
  if (limits.lifetime_budget_rounds > 0) {
    M2M_CHECK_EQ(static_cast<int>(limits.node_residual_mj.size()),
                 compiled.node_count())
        << "the battery lifetime gate needs a residual for every node";
    const std::vector<double> node_mj =
        PerNodeRoundEnergyMj(compiled, functions, limits.energy);
    for (NodeId node = 0; node < static_cast<NodeId>(node_mj.size());
         ++node) {
      const double drain_mj = node_mj[node] + limits.idle_mj_per_round;
      if (drain_mj <= 0.0) continue;  // Never drains: infinite lifetime.
      const double survivable_rounds =
          limits.node_residual_mj[node] / drain_mj;
      if (survivable_rounds < limits.lifetime_budget_rounds) {
        std::ostringstream detail;
        detail << "node " << node << " survives " << survivable_rounds
               << " rounds at " << drain_mj << " mJ/round < lifetime budget "
               << limits.lifetime_budget_rounds << " rounds";
        AdmissionDecision decision = AdmissionDecision::Reject(
            AdmissionReason::kBatteryLifetime, detail.str());
        decision.offending_node = node;
        decision.observed = survivable_rounds;
        decision.limit = limits.lifetime_budget_rounds;
        return decision;
      }
    }
  }
  return AdmissionDecision::Admit();
}

}  // namespace m2m
