#ifndef M2M_LIFECYCLE_TENANT_H_
#define M2M_LIFECYCLE_TENANT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lifecycle/lifecycle.h"
#include "obs/metrics.h"

namespace m2m {

/// Per-tenant QoS / quota class. Tenant quotas gate *logical* load — how
/// many query holds a tenant may carry and how wide each may be — before a
/// request ever reaches the lifecycle manager's physical gates (Theorem 3
/// state bound, TDMA slots, per-node energy). A value <= 0 means
/// unlimited.
struct QosClass {
  /// Maximum logical queries (holds) the tenant may have resident at once.
  int max_resident_queries = 0;
  /// Maximum sources a single admitted query may aggregate.
  int max_sources_per_query = 0;
};

/// One tenant-attributed lifecycle request.
struct TenantRequest {
  std::string tenant;
  MutationRequest request;
};

/// Outcome of one tenant batch: per-request outcomes in request order plus
/// the underlying manager commit accounting. Tenant-level rejections
/// (unknown tenant, quota, shared-query) are decided in the frontend and
/// never reach the manager; everything else carries the manager's typed
/// decision through unchanged.
struct TenantBatchResult {
  std::vector<MutationOutcome> outcomes;
  int accepted = 0;
  int rejected = 0;
  /// Of `rejected`, how many the frontend rejected before forwarding.
  int tenant_rejected = 0;
  bool committed = false;
  bool sequential_fallback = false;
  MutationResult commit;
};

class MultiTenantFrontend;

/// Builder for one multi-tenant batch (the concurrent frontend's unit of
/// admission): requests from any number of tenants accumulate and commit
/// as ONE lifecycle batch — one replan, one validation, one epoch bump —
/// with per-request tenant attribution.
class TenantBatch {
 public:
  explicit TenantBatch(MultiTenantFrontend* frontend);

  TenantBatch& Admit(const std::string& tenant, NodeId destination,
                     FunctionSpec spec);
  TenantBatch& Retire(const std::string& tenant, NodeId destination);
  TenantBatch& AddSource(const std::string& tenant, NodeId destination,
                         NodeId source, double weight);
  TenantBatch& RemoveSource(const std::string& tenant, NodeId destination,
                            NodeId source);
  TenantBatch& Push(TenantRequest request);

  int size() const { return static_cast<int>(requests_.size()); }
  bool empty() const { return requests_.empty(); }

  /// Commits everything accumulated and clears the batch.
  TenantBatchResult Commit();

 private:
  MultiTenantFrontend* frontend_;
  std::vector<TenantRequest> requests_;
};

/// Multi-tenant base-station frontend over the QueryLifecycleManager:
/// admits concurrent tenants onto ONE physical query catalog with
/// cross-tenant dedup and per-tenant QoS quotas.
///
/// Holdings model: each tenant carries *holds* — logical admissions —
/// against physical queries keyed by their canonical (destination,
/// source-set, function) form. Two tenants admitting the same canonical
/// query share one physical query (one aggregation tree, one table image,
/// one slice of the Theorem 3 state budget); the manager's refcount for a
/// destination equals the sum of tenant holds on it. A tenant retiring its
/// hold releases a refcount; the physical query — and its in-network state
/// — is only retracted when the LAST hold anywhere goes.
///
/// Gating rules (evaluated in the frontend, before forwarding):
///   - Requests from unregistered tenants reject with kTenantUnknown.
///   - Admits are gated against the tenant's QosClass using the
///     within-batch simulated resident count, so a batch cannot overshoot
///     a quota that its own earlier requests consumed (kTenantQuota).
///   - Retires require the tenant to actually hold the destination's
///     query, net of retires staged earlier in the same batch. A tenant
///     can never release — let alone retract — a hold it does not own.
///   - Source mutations (add / remove) change the *physical* query, which
///     would silently rewrite what every co-holder's query means; they
///     therefore require an exclusive hold (the manager's refcount equals
///     this tenant's holds) and reject with kSharedQuery otherwise.
///
/// Holdings are updated from the manager's ACTUAL per-request outcomes,
/// never from intent: a request the manager rejects (budget, structural)
/// leaves the tenant's holdings untouched, so one tenant's failed admit
/// can never cascade into retracting state another tenant depends on.
class MultiTenantFrontend {
 public:
  explicit MultiTenantFrontend(QueryLifecycleManager* manager);

  /// Registers a tenant with its QoS class. Re-registering updates the
  /// quota in place without touching holdings.
  void RegisterTenant(const std::string& tenant, const QosClass& qos = {});
  bool HasTenant(const std::string& tenant) const;

  /// Assigns one pre-seeded resident query (admitted via the manager's
  /// initial workload, so held by nobody) to `tenant`. Requires the query
  /// to exist and no tenant to hold it yet.
  void AdoptResident(const std::string& tenant, NodeId destination);

  /// Applies a batch of tenant-attributed requests: tenant gates first
  /// (typed rejections, nothing forwarded), then ONE manager batch for
  /// everything that passed, then holdings reconciliation from the actual
  /// outcomes. See TenantBatch.
  TenantBatchResult ApplyBatch(const std::vector<TenantRequest>& requests);

  /// Single-request conveniences (a batch of one).
  MutationResult AdmitQuery(const std::string& tenant, NodeId destination,
                            const FunctionSpec& spec);
  MutationResult RetireQuery(const std::string& tenant, NodeId destination);
  MutationResult AddSource(const std::string& tenant, NodeId destination,
                           NodeId source, double weight);
  MutationResult RemoveSource(const std::string& tenant, NodeId destination,
                              NodeId source);

  /// Holds `tenant` has on `destination`'s query (0 when none).
  int Holds(const std::string& tenant, NodeId destination) const;
  /// Total logical queries `tenant` has resident (sum of its holds).
  int64_t TotalHolds(const std::string& tenant) const;
  /// Sum of every tenant's holds on `destination` — equals the manager's
  /// refcount for every frontend-managed (or adopted) query.
  int HoldsAcrossTenants(NodeId destination) const;

  /// Attaches a metrics registry; batches then record tenant.* counters
  /// (requests, batches, tenant-level rejections by reason) and a
  /// per-tenant resident-holds gauge. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

  const QueryLifecycleManager& manager() const { return *manager_; }

 private:
  struct TenantState {
    QosClass qos;
    /// destination -> holds (absent = 0; erased when a hold count drains).
    std::map<NodeId, int> holds;
    obs::MetricHandle holds_gauge;
  };

  struct MetricHandles {
    obs::MetricHandle batches;
    obs::MetricHandle requests;
    obs::MetricHandle rejections;
    obs::MetricHandle reject_unknown;
    obs::MetricHandle reject_quota;
    obs::MetricHandle reject_shared;
  };

  void RefreshHoldsGauge(const std::string& tenant);

  QueryLifecycleManager* manager_;
  std::map<std::string, TenantState> tenants_;
  obs::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;
};

}  // namespace m2m

#endif  // M2M_LIFECYCLE_TENANT_H_
