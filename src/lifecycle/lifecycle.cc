#include "lifecycle/lifecycle.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "plan/dissemination.h"
#include "plan/serialization.h"

namespace m2m {

namespace {

bool Contains(const std::vector<NodeId>& nodes, NodeId node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

constexpr AdmissionReason kAllReasons[] = {
    AdmissionReason::kAdmitted,
    AdmissionReason::kDuplicateDestination,
    AdmissionReason::kUnknownDestination,
    AdmissionReason::kDuplicateSource,
    AdmissionReason::kUnknownSource,
    AdmissionReason::kEmptySourceSet,
    AdmissionReason::kInvalidNode,
    AdmissionReason::kNoAliveSources,
    AdmissionReason::kStateBound,
    AdmissionReason::kTdmaCapacity,
    AdmissionReason::kEnergyBudget,
    AdmissionReason::kTenantUnknown,
    AdmissionReason::kTenantQuota,
    AdmissionReason::kSharedQuery,
};

MutationOutcome RejectOutcome(AdmissionReason reason, std::string detail) {
  MutationOutcome outcome;
  outcome.decision = AdmissionDecision::Reject(reason, std::move(detail));
  return outcome;
}

}  // namespace

std::string ToString(MutationType type) {
  switch (type) {
    case MutationType::kAdmit:
      return "admit";
    case MutationType::kRetire:
      return "retire";
    case MutationType::kAddSource:
      return "add_source";
    case MutationType::kRemoveSource:
      return "remove_source";
  }
  return "unknown";
}

MutationRequest MutationRequest::Admit(NodeId destination, FunctionSpec spec) {
  MutationRequest request;
  request.type = MutationType::kAdmit;
  request.destination = destination;
  request.spec = std::move(spec);
  return request;
}

MutationRequest MutationRequest::Retire(NodeId destination) {
  MutationRequest request;
  request.type = MutationType::kRetire;
  request.destination = destination;
  return request;
}

MutationRequest MutationRequest::AddSource(NodeId destination, NodeId source,
                                           double weight) {
  MutationRequest request;
  request.type = MutationType::kAddSource;
  request.destination = destination;
  request.source = source;
  request.weight = weight;
  return request;
}

MutationRequest MutationRequest::RemoveSource(NodeId destination,
                                              NodeId source) {
  MutationRequest request;
  request.type = MutationType::kRemoveSource;
  request.destination = destination;
  request.source = source;
  return request;
}

MutationBatch::MutationBatch(QueryLifecycleManager* manager)
    : manager_(manager) {
  M2M_CHECK(manager_ != nullptr);
}

MutationBatch& MutationBatch::Admit(NodeId destination, FunctionSpec spec) {
  return Push(MutationRequest::Admit(destination, std::move(spec)));
}

MutationBatch& MutationBatch::Retire(NodeId destination) {
  return Push(MutationRequest::Retire(destination));
}

MutationBatch& MutationBatch::AddSource(NodeId destination, NodeId source,
                                        double weight) {
  return Push(MutationRequest::AddSource(destination, source, weight));
}

MutationBatch& MutationBatch::RemoveSource(NodeId destination,
                                           NodeId source) {
  return Push(MutationRequest::RemoveSource(destination, source));
}

MutationBatch& MutationBatch::Push(MutationRequest request) {
  requests_.push_back(std::move(request));
  return *this;
}

BatchResult MutationBatch::Commit() {
  BatchResult result = manager_->ApplyBatch(requests_);
  requests_.clear();
  return result;
}

QueryLifecycleManager::QueryLifecycleManager(const Topology& topology,
                                             const Workload& initial,
                                             NodeId base_station,
                                             const LifecycleOptions& options)
    : topology_(&topology),
      base_(base_station),
      options_(options),
      paths_(topology),
      catalog_(QueryCatalog::FromWorkload(initial)),
      // The live workload is the catalog's canonical materialization, so
      // every later delta diffs against catalog-derived bytes.
      workload_(catalog_.ToWorkload()),
      plan_(BuildPlan(
          std::make_shared<MulticastForest>(paths_, workload_.tasks),
          workload_.functions, options.planner)),
      compiled_(std::make_shared<CompiledPlan>(CompiledPlan::Compile(
          plan_, workload_.functions, MergePolicy::kGreedyMergePerEdge,
          static_cast<uint32_t>(catalog_.version())))),
      images_(EncodeAllNodeStates(*compiled_, workload_.functions)) {
  M2M_CHECK(base_ >= 0 && base_ < topology.node_count());
  M2M_CHECK(!workload_.tasks.empty()) << "initial workload has no queries";
}

void QueryLifecycleManager::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  handles_.admissions = metrics_->Counter("qlm.admissions");
  handles_.rejections = metrics_->Counter("qlm.rejections");
  handles_.rejections_by_reason.clear();
  for (AdmissionReason reason : kAllReasons) {
    handles_.rejections_by_reason.push_back(
        metrics_->Counter("qlm.rejections." + ToString(reason)));
  }
  handles_.replans = metrics_->Counter("qlm.replans");
  handles_.edges_reused = metrics_->Counter("qlm.replan_edges_reused");
  handles_.edges_reoptimized =
      metrics_->Counter("qlm.replan_edges_reoptimized");
  handles_.images_shipped = metrics_->Counter("qlm.images_shipped");
  handles_.bumps_shipped = metrics_->Counter("qlm.bumps_shipped");
  handles_.delta_state_bytes = metrics_->Counter("qlm.delta_state_bytes");
  handles_.catalog_size = metrics_->Gauge("qlm.catalog_size");
  handles_.catalog_logical_size = metrics_->Gauge("qlm.catalog_logical_size");
  handles_.catalog_version = metrics_->Gauge("qlm.catalog_version");
  handles_.batch_batches = metrics_->Counter("qlm.batch.batches");
  handles_.batch_requests = metrics_->Counter("qlm.batch.requests");
  handles_.batch_commits = metrics_->Counter("qlm.batch.commits");
  handles_.batch_fallbacks = metrics_->Counter("qlm.batch.fallbacks");
  handles_.dedup_hits = metrics_->Counter("qlm.dedup.hits");
  handles_.dedup_releases = metrics_->Counter("qlm.dedup.releases");
  RefreshCatalogGauges();
}

bool QueryLifecycleManager::BelievedDead(NodeId node) const {
  return runtime_ != nullptr &&
         Contains(runtime_->ledger().believed_dead(), node);
}

void QueryLifecycleManager::RecordRejection(AdmissionReason reason) {
  if (metrics_ == nullptr) return;
  metrics_->Add(handles_.rejections, 1);
  metrics_->Add(handles_.rejections_by_reason[static_cast<size_t>(reason)],
                1);
}

void QueryLifecycleManager::RefreshCatalogGauges() {
  if (metrics_ == nullptr) return;
  metrics_->Set(handles_.catalog_size, catalog_.size());
  metrics_->Set(handles_.catalog_logical_size, catalog_.LogicalSize());
  metrics_->Set(handles_.catalog_version, catalog_.version());
}

MutationOutcome QueryLifecycleManager::ValidateAndApply(
    QueryCatalog& catalog, const MutationRequest& request) const {
  const NodeId destination = request.destination;
  switch (request.type) {
    case MutationType::kAdmit: {
      if (destination < 0 || destination >= topology_->node_count()) {
        std::ostringstream detail;
        detail << "destination " << destination << " outside the deployment";
        return RejectOutcome(AdmissionReason::kInvalidNode, detail.str());
      }
      if (catalog.Contains(destination)) {
        // Cross-tenant dedup: resubmitting the exact canonical
        // (destination, source-set, function) key is an idempotent
        // refcount acquire; only a *conflicting* spec is a duplicate.
        if (SpecsEquivalent(catalog.Get(destination).spec, request.spec)) {
          MutationOutcome outcome;
          outcome.decision = AdmissionDecision::Admit();
          outcome.deduplicated = true;
          outcome.refcount = catalog.Acquire(destination);
          return outcome;
        }
        std::ostringstream detail;
        detail << "destination " << destination << " already has a query";
        return RejectOutcome(AdmissionReason::kDuplicateDestination,
                             detail.str());
      }
      if (request.spec.weights.empty()) {
        return RejectOutcome(AdmissionReason::kEmptySourceSet,
                             "admission requires at least one source");
      }
      std::set<NodeId> seen;
      for (const auto& [source, weight] : request.spec.weights) {
        if (source < 0 || source >= topology_->node_count() ||
            source == destination) {
          std::ostringstream detail;
          detail << "source " << source << " invalid for destination "
                 << destination;
          return RejectOutcome(AdmissionReason::kInvalidNode, detail.str());
        }
        if (!seen.insert(source).second) {
          std::ostringstream detail;
          detail << "source " << source << " listed twice";
          return RejectOutcome(AdmissionReason::kDuplicateSource,
                               detail.str());
        }
      }
      if (BelievedDead(destination)) {
        std::ostringstream detail;
        detail << "destination " << destination << " is believed dead";
        return RejectOutcome(AdmissionReason::kInvalidNode, detail.str());
      }
      // An attached runtime prunes believed-dead sources before planning;
      // a query left with zero believed-alive sources would be unservable
      // (and trip the runtime's no-empty-task invariant).
      if (runtime_ != nullptr) {
        bool any_alive = false;
        for (const auto& [source, weight] : request.spec.weights) {
          any_alive = any_alive || !BelievedDead(source);
        }
        if (!any_alive) {
          std::ostringstream detail;
          detail << "every source of destination " << destination
                 << " is believed dead";
          return RejectOutcome(AdmissionReason::kNoAliveSources,
                               detail.str());
        }
      }
      QueryDefinition query;
      query.destination = destination;
      query.spec = request.spec;
      catalog.Admit(query);
      MutationOutcome outcome;
      outcome.decision = AdmissionDecision::Admit();
      outcome.refcount = 1;
      return outcome;
    }
    case MutationType::kRetire: {
      if (!catalog.Contains(destination)) {
        std::ostringstream detail;
        detail << "no query for destination " << destination;
        return RejectOutcome(AdmissionReason::kUnknownDestination,
                             detail.str());
      }
      if (catalog.RefCount(destination) > 1) {
        // Other holders remain: drop one hold, keep the physical query
        // (and its trees, tables, and wire images) untouched.
        MutationOutcome outcome;
        outcome.decision = AdmissionDecision::Admit();
        outcome.deduplicated = true;
        outcome.refcount = catalog.Release(destination);
        return outcome;
      }
      // Last hold: physical retirement. Retiring the final resident query
      // is legal — the catalog drains to zero and the empty plan
      // disseminates as retraction images.
      catalog.Retire(destination);
      MutationOutcome outcome;
      outcome.decision = AdmissionDecision::Admit();
      outcome.refcount = 0;
      return outcome;
    }
    case MutationType::kAddSource: {
      if (!catalog.Contains(destination)) {
        std::ostringstream detail;
        detail << "no query for destination " << destination;
        return RejectOutcome(AdmissionReason::kUnknownDestination,
                             detail.str());
      }
      const NodeId source = request.source;
      if (source < 0 || source >= topology_->node_count() ||
          source == destination) {
        std::ostringstream detail;
        detail << "source " << source << " invalid for destination "
               << destination;
        return RejectOutcome(AdmissionReason::kInvalidNode, detail.str());
      }
      if (catalog.Get(destination).HasSource(source)) {
        std::ostringstream detail;
        detail << "source " << source << " already feeds destination "
               << destination;
        return RejectOutcome(AdmissionReason::kDuplicateSource,
                             detail.str());
      }
      catalog.AddSource(destination, source, request.weight);
      MutationOutcome outcome;
      outcome.decision = AdmissionDecision::Admit();
      outcome.refcount = catalog.RefCount(destination);
      return outcome;
    }
    case MutationType::kRemoveSource: {
      if (!catalog.Contains(destination)) {
        std::ostringstream detail;
        detail << "no query for destination " << destination;
        return RejectOutcome(AdmissionReason::kUnknownDestination,
                             detail.str());
      }
      const NodeId source = request.source;
      const QueryDefinition& query = catalog.Get(destination);
      if (!query.HasSource(source)) {
        std::ostringstream detail;
        detail << "source " << source << " does not feed destination "
               << destination;
        return RejectOutcome(AdmissionReason::kUnknownSource, detail.str());
      }
      if (query.spec.weights.size() == 1) {
        std::ostringstream detail;
        detail << "source " << source << " is destination " << destination
               << "'s last source";
        return RejectOutcome(AdmissionReason::kEmptySourceSet, detail.str());
      }
      if (runtime_ != nullptr) {
        bool any_alive = false;
        for (const auto& [s, weight] : query.spec.weights) {
          any_alive = any_alive || (s != source && !BelievedDead(s));
        }
        if (!any_alive) {
          std::ostringstream detail;
          detail << "every source of destination " << destination
                 << " is believed dead";
          return RejectOutcome(AdmissionReason::kNoAliveSources,
                               detail.str());
        }
      }
      catalog.RemoveSource(destination, source);
      MutationOutcome outcome;
      outcome.decision = AdmissionDecision::Admit();
      outcome.refcount = catalog.RefCount(destination);
      return outcome;
    }
  }
  return RejectOutcome(AdmissionReason::kInvalidNode,
                       "unknown mutation type");
}

MutationResult QueryLifecycleManager::ApplySingle(
    const MutationRequest& request) {
  QueryCatalog candidate = catalog_;
  MutationOutcome outcome = ValidateAndApply(candidate, request);
  if (!outcome.decision.admitted) {
    MutationResult result;
    result.decision = outcome.decision;
    result.catalog_version = catalog_.version();
    RecordRejection(result.decision.reason);
    return result;
  }
  if (outcome.deduplicated) {
    MutationResult result = CommitRefcountOnly(std::move(candidate), outcome);
    if (metrics_ != nullptr) {
      metrics_->Add(request.type == MutationType::kAdmit
                        ? handles_.dedup_hits
                        : handles_.dedup_releases,
                    1);
    }
    return result;
  }
  MutationResult result = Commit(std::move(candidate));
  if (!result.decision.admitted) {
    RecordRejection(result.decision.reason);
    return result;
  }
  result.refcount = outcome.refcount;
  if (metrics_ != nullptr) metrics_->Add(handles_.admissions, 1);
  return result;
}

MutationResult QueryLifecycleManager::AdmitQuery(NodeId destination,
                                                 const FunctionSpec& spec) {
  return ApplySingle(MutationRequest::Admit(destination, spec));
}

MutationResult QueryLifecycleManager::RetireQuery(NodeId destination) {
  return ApplySingle(MutationRequest::Retire(destination));
}

MutationResult QueryLifecycleManager::AddSource(NodeId destination,
                                                NodeId source,
                                                double weight) {
  return ApplySingle(MutationRequest::AddSource(destination, source, weight));
}

MutationResult QueryLifecycleManager::RemoveSource(NodeId destination,
                                                   NodeId source) {
  return ApplySingle(MutationRequest::RemoveSource(destination, source));
}

BatchResult QueryLifecycleManager::ApplyBatch(
    const std::vector<MutationRequest>& requests) {
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.batch_batches, 1);
    metrics_->Add(handles_.batch_requests,
                  static_cast<int64_t>(requests.size()));
  }
  BatchResult batch;
  if (requests.empty()) {
    batch.commit.catalog_version = catalog_.version();
    return batch;
  }

  // Validate every request, in order, against the evolving candidate — a
  // batch behaves exactly like its own sequential replay, and a rejected
  // request contributes nothing to what commits.
  const int64_t base_version = catalog_.version();
  QueryCatalog candidate = catalog_;
  for (const MutationRequest& request : requests) {
    batch.outcomes.push_back(ValidateAndApply(candidate, request));
  }

  const bool material = candidate.version() != base_version;
  if (material) {
    // ONE replan + ONE consistency validation + ONE epoch bump for the
    // whole accepted set. The candidate's version already advanced once
    // per accepted material request (matching sequential replay), and the
    // single commit compiles at the FINAL version, so the resulting wire
    // images are byte-identical to the sequential end state.
    MutationResult commit = Commit(std::move(candidate));
    if (!commit.decision.admitted) {
      // The *combined* candidate tripped an admission budget. Individual
      // requests may still fit: degrade to exact sequential application so
      // batched and unbatched replay always agree on the final state.
      if (metrics_ != nullptr) metrics_->Add(handles_.batch_fallbacks, 1);
      return SequentialFallback(requests);
    }
    batch.committed = true;
    batch.commit = std::move(commit);
    if (metrics_ != nullptr) metrics_->Add(handles_.batch_commits, 1);
  } else {
    // Refcount-only (or all-rejected) batch: adopt the candidate's
    // bookkeeping without replanning or opening an epoch.
    catalog_ = std::move(candidate);
    batch.commit.decision = AdmissionDecision::Admit();
    batch.commit.deduplicated = true;
    batch.commit.catalog_version = catalog_.version();
    RefreshCatalogGauges();
  }

  for (size_t i = 0; i < requests.size(); ++i) {
    const MutationOutcome& outcome = batch.outcomes[i];
    if (outcome.decision.admitted) {
      ++batch.accepted;
      if (metrics_ != nullptr) {
        metrics_->Add(handles_.admissions, 1);
        if (outcome.deduplicated) {
          metrics_->Add(requests[i].type == MutationType::kAdmit
                            ? handles_.dedup_hits
                            : handles_.dedup_releases,
                        1);
        }
      }
    } else {
      ++batch.rejected;
      RecordRejection(outcome.decision.reason);
    }
  }
  return batch;
}

BatchResult QueryLifecycleManager::SequentialFallback(
    const std::vector<MutationRequest>& requests) {
  BatchResult batch;
  batch.sequential_fallback = true;
  batch.commit.decision = AdmissionDecision::Admit();
  for (const MutationRequest& request : requests) {
    MutationResult result = ApplySingle(request);
    MutationOutcome outcome;
    outcome.decision = result.decision;
    outcome.deduplicated = result.deduplicated;
    outcome.refcount = result.refcount;
    if (result.decision.admitted) {
      ++batch.accepted;
      batch.commit.replan.edges_reused += result.replan.edges_reused;
      batch.commit.replan.edges_reoptimized +=
          result.replan.edges_reoptimized;
      batch.commit.images_shipped += result.images_shipped;
      batch.commit.bumps_shipped += result.bumps_shipped;
      batch.commit.delta_state_bytes += result.delta_state_bytes;
    } else {
      ++batch.rejected;
    }
    batch.outcomes.push_back(std::move(outcome));
  }
  batch.commit.catalog_version = catalog_.version();
  return batch;
}

MutationResult QueryLifecycleManager::CommitRefcountOnly(
    QueryCatalog candidate, const MutationOutcome& outcome) {
  catalog_ = std::move(candidate);
  MutationResult result;
  result.decision = outcome.decision;
  result.deduplicated = true;
  result.refcount = outcome.refcount;
  result.catalog_version = catalog_.version();
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.admissions, 1);
    RefreshCatalogGauges();
  }
  return result;
}

MutationResult QueryLifecycleManager::Commit(QueryCatalog candidate) {
  Workload candidate_workload = candidate.ToWorkload();

  // Incremental Corollary 1 replan of the candidate workload over the
  // deployment routing trees. Draining to an empty workload replans to the
  // empty forest; re-admission replans back out of it.
  UpdateStats stats;
  GlobalPlan candidate_plan =
      ReplanForWorkload(plan_, paths_, candidate_workload.tasks,
                        candidate_workload.functions, &stats);

  // Theorem 1: every per-edge solution must still cover every route.
  M2M_CHECK(FindConsistencyViolations(candidate_plan).empty())
      << "candidate plan violates Theorem 1 consistency";
  // Corollary 1: the patch may only have touched predicted edges.
  std::vector<DirectedEdge> divergent =
      DivergentEdgeKeys(plan_, candidate_plan);
  std::vector<DirectedEdge> predicted = PredictedPerturbedEdges(
      plan_, workload_.functions, candidate_plan,
      candidate_workload.functions);
  for (const DirectedEdge& edge : divergent) {
    M2M_CHECK(std::binary_search(predicted.begin(), predicted.end(), edge))
        << "edge " << edge.tail << "->" << edge.head
        << " changed outside the Corollary 1 predicted perturbation set";
  }

  auto candidate_compiled = std::make_shared<CompiledPlan>(
      CompiledPlan::Compile(candidate_plan, candidate_workload.functions,
                            MergePolicy::kGreedyMergePerEdge,
                            static_cast<uint32_t>(candidate.version())));

  AdmissionDecision budgets =
      CheckPlanBudgets(*candidate_compiled, candidate_workload.functions,
                       *topology_, options_.limits);
  if (!budgets.admitted) {
    // Candidate state is discarded wholesale; the live catalog, plan,
    // compiled tables, and images are untouched.
    MutationResult result;
    result.decision = budgets;
    result.catalog_version = catalog_.version();
    return result;
  }

  std::vector<std::vector<uint8_t>> new_images =
      EncodeAllNodeStates(*candidate_compiled, candidate_workload.functions);
  std::vector<NodeImageDelta> deltas = DiffNodeImages(images_, new_images);

  MutationResult result;
  result.decision = AdmissionDecision::Admit();
  result.replan = stats;
  result.predicted_edges = std::move(predicted);
  result.divergent_edges = std::move(divergent);
  for (const NodeImageDelta& delta : deltas) {
    if (delta.ship_image) {
      ++result.images_shipped;
      result.delta_state_bytes +=
          static_cast<int64_t>(new_images[delta.node].size());
    } else {
      ++result.bumps_shipped;
      result.delta_state_bytes += kEpochBumpPayloadBytes;
    }
  }

  catalog_ = std::move(candidate);
  workload_ = std::move(candidate_workload);
  plan_ = std::move(candidate_plan);
  compiled_ = std::move(candidate_compiled);
  images_ = std::move(new_images);
  result.catalog_version = catalog_.version();

  if (runtime_ != nullptr) {
    runtime_->SubmitWorkload(workload_);
  }
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.replans, 1);
    metrics_->Add(handles_.edges_reused, result.replan.edges_reused);
    metrics_->Add(handles_.edges_reoptimized,
                  result.replan.edges_reoptimized);
    metrics_->Add(handles_.images_shipped, result.images_shipped);
    metrics_->Add(handles_.bumps_shipped, result.bumps_shipped);
    metrics_->Add(handles_.delta_state_bytes, result.delta_state_bytes);
    RefreshCatalogGauges();
  }
  return result;
}

}  // namespace m2m
