#include "lifecycle/lifecycle.h"

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "plan/dissemination.h"
#include "plan/serialization.h"

namespace m2m {

namespace {

bool Contains(const std::vector<NodeId>& nodes, NodeId node) {
  return std::find(nodes.begin(), nodes.end(), node) != nodes.end();
}

constexpr AdmissionReason kAllReasons[] = {
    AdmissionReason::kAdmitted,
    AdmissionReason::kDuplicateDestination,
    AdmissionReason::kUnknownDestination,
    AdmissionReason::kDuplicateSource,
    AdmissionReason::kUnknownSource,
    AdmissionReason::kEmptySourceSet,
    AdmissionReason::kInvalidNode,
    AdmissionReason::kNoAliveSources,
    AdmissionReason::kStateBound,
    AdmissionReason::kTdmaCapacity,
    AdmissionReason::kEnergyBudget,
};

}  // namespace

QueryLifecycleManager::QueryLifecycleManager(const Topology& topology,
                                             const Workload& initial,
                                             NodeId base_station,
                                             const LifecycleOptions& options)
    : topology_(&topology),
      base_(base_station),
      options_(options),
      paths_(topology),
      catalog_(QueryCatalog::FromWorkload(initial)),
      // The live workload is the catalog's canonical materialization, so
      // every later delta diffs against catalog-derived bytes.
      workload_(catalog_.ToWorkload()),
      plan_(BuildPlan(
          std::make_shared<MulticastForest>(paths_, workload_.tasks),
          workload_.functions, options.planner)),
      compiled_(std::make_shared<CompiledPlan>(CompiledPlan::Compile(
          plan_, workload_.functions, MergePolicy::kGreedyMergePerEdge,
          static_cast<uint32_t>(catalog_.version())))),
      images_(EncodeAllNodeStates(*compiled_, workload_.functions)) {
  M2M_CHECK(base_ >= 0 && base_ < topology.node_count());
  M2M_CHECK(!workload_.tasks.empty()) << "initial workload has no queries";
}

void QueryLifecycleManager::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  handles_.admissions = metrics_->Counter("qlm.admissions");
  handles_.rejections = metrics_->Counter("qlm.rejections");
  handles_.rejections_by_reason.clear();
  for (AdmissionReason reason : kAllReasons) {
    handles_.rejections_by_reason.push_back(
        metrics_->Counter("qlm.rejections." + ToString(reason)));
  }
  handles_.edges_reused = metrics_->Counter("qlm.replan_edges_reused");
  handles_.edges_reoptimized =
      metrics_->Counter("qlm.replan_edges_reoptimized");
  handles_.images_shipped = metrics_->Counter("qlm.images_shipped");
  handles_.bumps_shipped = metrics_->Counter("qlm.bumps_shipped");
  handles_.delta_state_bytes = metrics_->Counter("qlm.delta_state_bytes");
  handles_.catalog_size = metrics_->Gauge("qlm.catalog_size");
  handles_.catalog_version = metrics_->Gauge("qlm.catalog_version");
  metrics_->Set(handles_.catalog_size, catalog_.size());
  metrics_->Set(handles_.catalog_version, catalog_.version());
}

bool QueryLifecycleManager::BelievedDead(NodeId node) const {
  return runtime_ != nullptr &&
         Contains(runtime_->ledger().believed_dead(), node);
}

MutationResult QueryLifecycleManager::Reject(AdmissionReason reason,
                                             std::string detail) {
  MutationResult result;
  result.decision = AdmissionDecision::Reject(reason, std::move(detail));
  result.catalog_version = catalog_.version();
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.rejections, 1);
    metrics_->Add(
        handles_.rejections_by_reason[static_cast<size_t>(reason)], 1);
  }
  return result;
}

MutationResult QueryLifecycleManager::AdmitQuery(NodeId destination,
                                                 const FunctionSpec& spec) {
  if (destination < 0 || destination >= topology_->node_count()) {
    std::ostringstream detail;
    detail << "destination " << destination << " outside the deployment";
    return Reject(AdmissionReason::kInvalidNode, detail.str());
  }
  if (catalog_.Contains(destination)) {
    std::ostringstream detail;
    detail << "destination " << destination << " already has a query";
    return Reject(AdmissionReason::kDuplicateDestination, detail.str());
  }
  if (spec.weights.empty()) {
    return Reject(AdmissionReason::kEmptySourceSet,
                  "admission requires at least one source");
  }
  std::set<NodeId> seen;
  for (const auto& [source, weight] : spec.weights) {
    if (source < 0 || source >= topology_->node_count() ||
        source == destination) {
      std::ostringstream detail;
      detail << "source " << source << " invalid for destination "
             << destination;
      return Reject(AdmissionReason::kInvalidNode, detail.str());
    }
    if (!seen.insert(source).second) {
      std::ostringstream detail;
      detail << "source " << source << " listed twice";
      return Reject(AdmissionReason::kDuplicateSource, detail.str());
    }
  }
  if (BelievedDead(destination)) {
    std::ostringstream detail;
    detail << "destination " << destination << " is believed dead";
    return Reject(AdmissionReason::kInvalidNode, detail.str());
  }
  QueryCatalog candidate = catalog_;
  QueryDefinition query;
  query.destination = destination;
  query.spec = spec;
  candidate.Admit(query);
  return Commit(std::move(candidate), destination);
}

MutationResult QueryLifecycleManager::RetireQuery(NodeId destination) {
  if (!catalog_.Contains(destination)) {
    std::ostringstream detail;
    detail << "no query for destination " << destination;
    return Reject(AdmissionReason::kUnknownDestination, detail.str());
  }
  if (catalog_.size() == 1) {
    return Reject(AdmissionReason::kEmptySourceSet,
                  "retiring the last query would empty the catalog");
  }
  QueryCatalog candidate = catalog_;
  candidate.Retire(destination);
  return Commit(std::move(candidate), kInvalidNode);
}

MutationResult QueryLifecycleManager::AddSource(NodeId destination,
                                                NodeId source,
                                                double weight) {
  if (!catalog_.Contains(destination)) {
    std::ostringstream detail;
    detail << "no query for destination " << destination;
    return Reject(AdmissionReason::kUnknownDestination, detail.str());
  }
  if (source < 0 || source >= topology_->node_count() ||
      source == destination) {
    std::ostringstream detail;
    detail << "source " << source << " invalid for destination "
           << destination;
    return Reject(AdmissionReason::kInvalidNode, detail.str());
  }
  if (catalog_.Get(destination).HasSource(source)) {
    std::ostringstream detail;
    detail << "source " << source << " already feeds destination "
           << destination;
    return Reject(AdmissionReason::kDuplicateSource, detail.str());
  }
  QueryCatalog candidate = catalog_;
  candidate.AddSource(destination, source, weight);
  return Commit(std::move(candidate), destination);
}

MutationResult QueryLifecycleManager::RemoveSource(NodeId destination,
                                                   NodeId source) {
  if (!catalog_.Contains(destination)) {
    std::ostringstream detail;
    detail << "no query for destination " << destination;
    return Reject(AdmissionReason::kUnknownDestination, detail.str());
  }
  const QueryDefinition& query = catalog_.Get(destination);
  if (!query.HasSource(source)) {
    std::ostringstream detail;
    detail << "source " << source << " does not feed destination "
           << destination;
    return Reject(AdmissionReason::kUnknownSource, detail.str());
  }
  if (query.spec.weights.size() == 1) {
    std::ostringstream detail;
    detail << "source " << source << " is destination " << destination
           << "'s last source";
    return Reject(AdmissionReason::kEmptySourceSet, detail.str());
  }
  QueryCatalog candidate = catalog_;
  candidate.RemoveSource(destination, source);
  return Commit(std::move(candidate), destination);
}

MutationResult QueryLifecycleManager::Commit(QueryCatalog candidate,
                                             NodeId affected) {
  Workload candidate_workload = candidate.ToWorkload();

  // An attached runtime prunes believed-dead sources before planning; a
  // query left with zero believed-alive sources would be unservable (and
  // trip the runtime's no-empty-task invariant), so it never commits.
  if (runtime_ != nullptr && affected != kInvalidNode) {
    for (const Task& task : candidate_workload.tasks) {
      if (task.destination != affected) continue;
      bool any_alive = false;
      for (NodeId source : task.sources) {
        any_alive = any_alive || !BelievedDead(source);
      }
      if (!any_alive) {
        std::ostringstream detail;
        detail << "every source of destination " << affected
               << " is believed dead";
        return Reject(AdmissionReason::kNoAliveSources, detail.str());
      }
    }
  }

  // Incremental Corollary 1 replan of the candidate workload over the
  // deployment routing trees.
  UpdateStats stats;
  GlobalPlan candidate_plan =
      ReplanForWorkload(plan_, paths_, candidate_workload.tasks,
                        candidate_workload.functions, &stats);

  // Theorem 1: every per-edge solution must still cover every route.
  M2M_CHECK(FindConsistencyViolations(candidate_plan).empty())
      << "candidate plan violates Theorem 1 consistency";
  // Corollary 1: the patch may only have touched predicted edges.
  std::vector<DirectedEdge> divergent =
      DivergentEdgeKeys(plan_, candidate_plan);
  std::vector<DirectedEdge> predicted = PredictedPerturbedEdges(
      plan_, workload_.functions, candidate_plan,
      candidate_workload.functions);
  for (const DirectedEdge& edge : divergent) {
    M2M_CHECK(std::binary_search(predicted.begin(), predicted.end(), edge))
        << "edge " << edge.tail << "->" << edge.head
        << " changed outside the Corollary 1 predicted perturbation set";
  }

  auto candidate_compiled = std::make_shared<CompiledPlan>(
      CompiledPlan::Compile(candidate_plan, candidate_workload.functions,
                            MergePolicy::kGreedyMergePerEdge,
                            static_cast<uint32_t>(candidate.version())));

  AdmissionDecision budgets =
      CheckPlanBudgets(*candidate_compiled, candidate_workload.functions,
                       *topology_, options_.limits);
  if (!budgets.admitted) {
    // Candidate state is discarded wholesale; the live catalog, plan,
    // compiled tables, and images are untouched.
    MutationResult result;
    result.decision = budgets;
    result.catalog_version = catalog_.version();
    if (metrics_ != nullptr) {
      metrics_->Add(handles_.rejections, 1);
      metrics_->Add(handles_.rejections_by_reason[static_cast<size_t>(
                        budgets.reason)],
                    1);
    }
    return result;
  }

  std::vector<std::vector<uint8_t>> new_images =
      EncodeAllNodeStates(*candidate_compiled, candidate_workload.functions);
  std::vector<NodeImageDelta> deltas = DiffNodeImages(images_, new_images);

  MutationResult result;
  result.decision = AdmissionDecision::Admit();
  result.replan = stats;
  result.predicted_edges = std::move(predicted);
  result.divergent_edges = std::move(divergent);
  for (const NodeImageDelta& delta : deltas) {
    if (delta.ship_image) {
      ++result.images_shipped;
      result.delta_state_bytes +=
          static_cast<int64_t>(new_images[delta.node].size());
    } else {
      ++result.bumps_shipped;
      result.delta_state_bytes += kEpochBumpPayloadBytes;
    }
  }

  catalog_ = std::move(candidate);
  workload_ = std::move(candidate_workload);
  plan_ = std::move(candidate_plan);
  compiled_ = std::move(candidate_compiled);
  images_ = std::move(new_images);
  result.catalog_version = catalog_.version();

  if (runtime_ != nullptr) {
    runtime_->SubmitWorkload(workload_);
  }
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.admissions, 1);
    metrics_->Add(handles_.edges_reused, result.replan.edges_reused);
    metrics_->Add(handles_.edges_reoptimized,
                  result.replan.edges_reoptimized);
    metrics_->Add(handles_.images_shipped, result.images_shipped);
    metrics_->Add(handles_.bumps_shipped, result.bumps_shipped);
    metrics_->Add(handles_.delta_state_bytes, result.delta_state_bytes);
    metrics_->Set(handles_.catalog_size, catalog_.size());
    metrics_->Set(handles_.catalog_version, catalog_.version());
  }
  return result;
}

}  // namespace m2m
