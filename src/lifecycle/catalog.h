#ifndef M2M_LIFECYCLE_CATALOG_H_
#define M2M_LIFECYCLE_CATALOG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "agg/aggregate_function.h"
#include "common/ids.h"
#include "workload/workload.h"

namespace m2m {

/// One registered query: a destination plus its declarative function spec.
/// The source set is the spec's weight keys; the catalog keeps the weights
/// sorted by source id, so every view derived from catalog *content* is
/// independent of the order in which mutations arrived.
struct QueryDefinition {
  NodeId destination = kInvalidNode;
  FunctionSpec spec;

  /// The query's sources, ascending.
  std::vector<NodeId> Sources() const;
  bool HasSource(NodeId source) const;
};

/// The base station's versioned query catalog: the authoritative record of
/// which many-to-many aggregation queries are live. Pure bookkeeping with
/// CHECKed structural preconditions — the lifecycle manager's admission
/// layer validates (and rejects with a typed reason) *before* mutating, so
/// a catalog mutation never fails at runtime. `version` bumps on every
/// successful mutation; equal versions mean equal content.
class QueryCatalog {
 public:
  QueryCatalog() = default;

  /// Seeds a catalog from a configured workload (one query per task).
  static QueryCatalog FromWorkload(const Workload& workload);

  bool Contains(NodeId destination) const;
  /// Requires Contains(destination).
  const QueryDefinition& Get(NodeId destination) const;
  int size() const { return static_cast<int>(queries_.size()); }
  int64_t version() const { return version_; }
  /// All queries, ascending by destination.
  const std::map<NodeId, QueryDefinition>& queries() const {
    return queries_;
  }

  /// Registers a new query. Requires: destination not present, at least
  /// one source, sources unique, destination not among its own sources.
  void Admit(const QueryDefinition& query);

  /// Removes and returns the query. Requires Contains(destination).
  QueryDefinition Retire(NodeId destination);

  /// Adds `source` to an existing query. Requires the query to exist and
  /// the source to be absent (and distinct from the destination).
  void AddSource(NodeId destination, NodeId source, double weight);

  /// Removes `source` from an existing query. Requires the query to exist,
  /// the source to be present, and at least one other source to remain.
  void RemoveSource(NodeId destination, NodeId source);

  /// Materializes the catalog as a Workload: tasks ascending by
  /// destination, sources ascending, functions rebuilt. Deterministic in
  /// catalog content — any mutation history reaching the same content
  /// yields the same workload, and therefore the same plan bytes.
  Workload ToWorkload() const;

 private:
  std::map<NodeId, QueryDefinition> queries_;
  int64_t version_ = 0;
};

}  // namespace m2m

#endif  // M2M_LIFECYCLE_CATALOG_H_
