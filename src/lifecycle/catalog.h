#ifndef M2M_LIFECYCLE_CATALOG_H_
#define M2M_LIFECYCLE_CATALOG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "agg/aggregate_function.h"
#include "common/ids.h"
#include "workload/workload.h"

namespace m2m {

/// Returns `spec` with its weights sorted ascending by source id — the
/// canonical form under which two query submissions are *the same query*:
/// equal (destination, canonical spec) pairs plan identically whatever
/// order their weights arrived in.
FunctionSpec CanonicalizeSpec(const FunctionSpec& spec);

/// True iff the two specs are byte-identical queries once canonicalized:
/// same aggregate kind, same threshold, same (source, weight) pairs.
bool SpecsEquivalent(const FunctionSpec& a, const FunctionSpec& b);

/// One registered query: a destination plus its declarative function spec.
/// The source set is the spec's weight keys; the catalog keeps the weights
/// sorted by source id, so every view derived from catalog *content* is
/// independent of the order in which mutations arrived.
///
/// `refcount` counts how many logical admissions (e.g. tenants of the
/// multi-tenant frontend) currently hold this physical query. It is
/// bookkeeping *about* the content, not content itself: materialized
/// workloads, plans, and wire images are refcount-independent.
struct QueryDefinition {
  NodeId destination = kInvalidNode;
  FunctionSpec spec;
  int refcount = 1;

  /// The query's sources, ascending.
  std::vector<NodeId> Sources() const;
  bool HasSource(NodeId source) const;

  friend bool operator==(const QueryDefinition&,
                         const QueryDefinition&) = default;
};

/// The base station's versioned query catalog: the authoritative record of
/// which many-to-many aggregation queries are live. Pure bookkeeping with
/// CHECKed structural preconditions — the lifecycle manager's admission
/// layer validates (and rejects with a typed reason) *before* mutating, so
/// a catalog mutation never fails at runtime. `version` bumps on every
/// successful *material* mutation (one that changes the content a plan is
/// derived from); equal versions mean equal material content. Refcount
/// traffic (Acquire / Release) never bumps the version — it provably
/// changes no plan-relevant state.
class QueryCatalog {
 public:
  QueryCatalog() = default;

  /// Seeds a catalog from a configured workload (one query per task,
  /// refcount 1 each).
  static QueryCatalog FromWorkload(const Workload& workload);

  bool Contains(NodeId destination) const;
  /// Requires Contains(destination).
  const QueryDefinition& Get(NodeId destination) const;
  /// Physical queries resident (each counted once however many holders).
  int size() const { return static_cast<int>(queries_.size()); }
  /// Logical queries resident: the sum of refcounts — what N tenants
  /// sharing deduped queries would count as their total admissions.
  int64_t LogicalSize() const;
  /// Refcount of `destination`'s query; 0 when absent.
  int RefCount(NodeId destination) const;
  int64_t version() const { return version_; }
  /// All queries, ascending by destination.
  const std::map<NodeId, QueryDefinition>& queries() const {
    return queries_;
  }

  /// Registers a new query at refcount 1. Requires: destination not
  /// present, at least one source, sources unique, destination not among
  /// its own sources.
  void Admit(const QueryDefinition& query);

  /// Bumps the refcount of an existing query (an exact resubmission — the
  /// same canonical (destination, source-set, function) key — from another
  /// logical holder). No version bump: nothing material changed. Returns
  /// the new refcount. Requires Contains(destination).
  int Acquire(NodeId destination);

  /// Drops one logical hold of a query other holders still reference. No
  /// version bump. Returns the new refcount. Requires Contains(destination)
  /// and refcount >= 2 — the last hold must go through Retire.
  int Release(NodeId destination);

  /// Removes and returns the query. Requires Contains(destination) and
  /// refcount == 1 (callers Release instead while other holders remain, so
  /// a retire never retracts a query someone still holds).
  QueryDefinition Retire(NodeId destination);

  /// Adds `source` to an existing query. Requires the query to exist and
  /// the source to be absent (and distinct from the destination).
  void AddSource(NodeId destination, NodeId source, double weight);

  /// Removes `source` from an existing query. Requires the query to exist,
  /// the source to be present, and at least one other source to remain.
  void RemoveSource(NodeId destination, NodeId source);

  /// Materializes the catalog as a Workload: tasks ascending by
  /// destination, sources ascending, functions rebuilt. Deterministic in
  /// catalog content — any mutation history reaching the same content
  /// yields the same workload, and therefore the same plan bytes.
  /// Refcount-independent: the deduped physical catalog and the logical
  /// N-tenant view materialize identically.
  Workload ToWorkload() const;

  friend bool operator==(const QueryCatalog&, const QueryCatalog&) = default;

 private:
  std::map<NodeId, QueryDefinition> queries_;
  int64_t version_ = 0;
};

}  // namespace m2m

#endif  // M2M_LIFECYCLE_CATALOG_H_
