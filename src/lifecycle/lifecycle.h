#ifndef M2M_LIFECYCLE_LIFECYCLE_H_
#define M2M_LIFECYCLE_LIFECYCLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/aggregate_function.h"
#include "common/ids.h"
#include "lifecycle/admission.h"
#include "lifecycle/catalog.h"
#include "obs/metrics.h"
#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/path_system.h"
#include "sim/self_healing.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Knobs for the query lifecycle manager.
struct LifecycleOptions {
  PlannerOptions planner;
  AdmissionLimits limits;
};

/// Outcome of one lifecycle mutation. On rejection the decision carries the
/// typed reason and every other field reflects the *unchanged* state — the
/// catalog, plan, and images are exactly what they were before the call.
struct MutationResult {
  AdmissionDecision decision;
  /// Catalog version after the call (unchanged on rejection — and on
  /// deduplicated refcount traffic, which is immaterial by definition).
  int64_t catalog_version = 0;
  /// True when the request resolved to pure refcount bookkeeping: an exact
  /// resubmission acquired an existing query, or a retire released a hold
  /// other holders still reference. No plan state mutated; `replan`,
  /// `images_shipped`, and `delta_state_bytes` are all zero.
  bool deduplicated = false;
  /// Refcount of the touched query after the call (0 once retired).
  int refcount = 0;
  /// Incremental replan bookkeeping (zeros on rejection).
  UpdateStats replan;
  /// Corollary 1 accounting for admitted mutations: the predicted
  /// perturbation set for the workload delta, and the edges the plan
  /// actually changed on (always a subset — CHECKed at commit).
  std::vector<DirectedEdge> predicted_edges;
  std::vector<DirectedEdge> divergent_edges;
  /// Dissemination delta for admitted mutations: full images vs. 5-byte
  /// epoch bumps, and their total payload bytes.
  int images_shipped = 0;
  int bumps_shipped = 0;
  int64_t delta_state_bytes = 0;
};

/// Kind of one batched lifecycle request.
enum class MutationType : uint8_t {
  kAdmit,
  kRetire,
  kAddSource,
  kRemoveSource,
};

std::string ToString(MutationType type);

/// One request inside a MutationBatch (or a standalone mutation). `spec`
/// is read for kAdmit; `source` and `weight` for the source mutations.
struct MutationRequest {
  MutationType type = MutationType::kAdmit;
  NodeId destination = kInvalidNode;
  NodeId source = kInvalidNode;
  double weight = 1.0;
  FunctionSpec spec;

  static MutationRequest Admit(NodeId destination, FunctionSpec spec);
  static MutationRequest Retire(NodeId destination);
  static MutationRequest AddSource(NodeId destination, NodeId source,
                                   double weight);
  static MutationRequest RemoveSource(NodeId destination, NodeId source);
};

/// Typed per-request outcome inside a batch. Rejection purity holds
/// mid-batch exactly as it does standalone: a rejected request contributed
/// nothing to the committed candidate, and later requests in the same
/// batch were validated as if it never arrived.
struct MutationOutcome {
  AdmissionDecision decision;
  /// Pure refcount bookkeeping (see MutationResult::deduplicated).
  bool deduplicated = false;
  /// Refcount of the touched query after the batch applies (0 = retired).
  int refcount = 0;
};

/// Outcome of one committed batch.
struct BatchResult {
  /// One outcome per request, in request order.
  std::vector<MutationOutcome> outcomes;
  int accepted = 0;
  int rejected = 0;
  /// True iff the batch materially changed the catalog and committed
  /// through ONE replan + ONE consistency validation + ONE epoch bump
  /// (refcount-only batches commit without any of the three).
  bool committed = false;
  /// True when the combined candidate tripped a budget gate and the batch
  /// degraded to per-request sequential application (identical semantics
  /// to unbatched replay; the amortization is lost, correctness is not).
  bool sequential_fallback = false;
  /// Aggregate replan / Corollary 1 / dissemination accounting for the
  /// whole batch (the single commit on the fast path; summed per-request
  /// accounting under sequential fallback).
  MutationResult commit;
};

class QueryLifecycleManager;

/// Accumulates admit / retire / add-source / remove-source requests and
/// commits them as one atomic catalog delta: one ReplanForWorkload, one
/// Theorem 1 + Corollary 1 validation, one admission-budget evaluation,
/// and one epoch bump — however many requests the batch carries. This is
/// the frontend's unit of amortization for production arrival rates:
/// per-query replans are the single-query cost the source paper's
/// many-to-many formulation exists to avoid paying N times.
class MutationBatch {
 public:
  explicit MutationBatch(QueryLifecycleManager* manager);

  MutationBatch& Admit(NodeId destination, FunctionSpec spec);
  MutationBatch& Retire(NodeId destination);
  MutationBatch& AddSource(NodeId destination, NodeId source, double weight);
  MutationBatch& RemoveSource(NodeId destination, NodeId source);
  MutationBatch& Push(MutationRequest request);

  int size() const { return static_cast<int>(requests_.size()); }
  bool empty() const { return requests_.empty(); }
  const std::vector<MutationRequest>& requests() const { return requests_; }

  /// Commits everything accumulated and clears the batch.
  BatchResult Commit();

 private:
  QueryLifecycleManager* manager_;
  std::vector<MutationRequest> requests_;
};

/// The query lifecycle manager (QLM): owns the versioned query catalog at
/// the base station and serves runtime workload churn — AdmitQuery,
/// RetireQuery, AddSource / RemoveSource, and batched ApplyBatch — with
/// incremental Corollary 1 re-planning and typed admission control.
///
/// Every mutation (and every batch) runs one pipeline:
///   1. Structural validation against the current catalog (typed rejection,
///      nothing mutated). Within a batch, requests validate against the
///      evolving candidate, so a batch behaves exactly like its sequential
///      replay; a rejected request is skipped and poisons nothing.
///   2. Candidate build: the mutated catalog is materialized as a workload
///      and incrementally re-planned with ReplanForWorkload — routing trees
///      and per-edge solutions are reused wherever the mutation's bipartite
///      neighborhoods are untouched. One replan per batch, not per request.
///   3. Validation: the candidate must pass the Theorem 1 consistency
///      checker, and its divergence from the live plan must lie inside the
///      Corollary 1 predicted perturbation set (both CHECKed — a violation
///      is a planner bug, not an admissible outcome).
///   4. Admission control: the candidate plan is evaluated against the
///      Theorem 3 state bound, the TDMA slot budget, and the per-node
///      energy budget; violations reject with a typed reason and leave the
///      catalog and plan untouched. A multi-request batch whose combined
///      candidate trips a budget degrades to sequential per-request
///      application, so batched and unbatched replay of the same requests
///      always land on byte-identical state.
///   5. Commit: the catalog versions forward, the candidate becomes the
///      live plan (compiled at plan epoch = catalog version — a batch
///      advances the version once per accepted material request but opens
///      only the FINAL version as an epoch), the per-node image diff is the
///      dissemination delta, and — when a self-healing runtime is attached
///      — the new workload is submitted once per commit so the delta rides
///      the epoch-versioned control plane.
///
/// Cross-tenant dedup rides the same pipeline: queries are keyed by their
/// canonical (destination, source-set, function) form, an exact
/// resubmission is an idempotent refcount acquire (no replan, no epoch, no
/// version bump — provably zero plan-state mutation), and a retire only
/// drops the physical query once the last hold releases. One refcounted
/// tree serving N holders amortizes both the Theorem 3 state bound and the
/// dissemination traffic, which is the sharing the paper's many-to-many
/// formulation exists to exploit.
///
/// The QLM plans against the *deployment* topology: admission budgets are
/// capacity questions, answered against configured capacity rather than
/// transient failure beliefs. An attached runtime prunes believed-dead
/// sources itself, exactly as it does for its configured workload; the
/// only belief the QLM consults is the alive-source check (admitting a
/// query every source of which is believed dead would hand the runtime an
/// unservable task).
///
/// The catalog may drain to zero resident queries: retiring the last query
/// replans to the empty plan, disseminates retraction images to every node
/// that held state, and leaves an empty forest the executor and runtime
/// handle like any other epoch; a later admission replans from empty.
class QueryLifecycleManager {
 public:
  QueryLifecycleManager(const Topology& topology, const Workload& initial,
                        NodeId base_station,
                        const LifecycleOptions& options = {});

  /// Registers a new query for `destination` aggregating `spec`'s weight
  /// keys. The spec's weights need not be sorted; the catalog canonicalizes.
  /// Resubmitting a byte-identical (destination, source-set, function) spec
  /// is idempotent: the existing query's refcount bumps and no plan state
  /// mutates. A conflicting spec for a served destination still rejects
  /// with kDuplicateDestination.
  MutationResult AdmitQuery(NodeId destination, const FunctionSpec& spec);

  /// Drops one hold of `destination`'s query: a refcount release while
  /// other holders remain, the physical retirement (replan, retraction
  /// dissemination) once the last hold goes. Retiring the last resident
  /// query is legal and leaves an empty catalog.
  MutationResult RetireQuery(NodeId destination);

  /// Adds `source` to `destination`'s query.
  MutationResult AddSource(NodeId destination, NodeId source, double weight);

  /// Removes `source` from `destination`'s query; the query must keep at
  /// least one source (and, when a runtime is attached, at least one
  /// believed-alive source).
  MutationResult RemoveSource(NodeId destination, NodeId source);

  /// Applies a batch of requests as one catalog delta: requests validate
  /// in order against the evolving candidate (typed per-request outcomes;
  /// rejections poison nothing), then the accepted set commits with one
  /// replan + one epoch bump. See MutationBatch.
  BatchResult ApplyBatch(const std::vector<MutationRequest>& requests);

  /// Attaches the self-healing runtime that should receive admitted
  /// workloads (SubmitWorkload on every commit). Pass nullptr to detach.
  void AttachRuntime(SelfHealingRuntime* runtime) { runtime_ = runtime; }

  /// Attaches a metrics registry; mutations then record qlm.* counters
  /// (admissions, rejections by reason, replans, batch amortization,
  /// dedup refcount traffic, replan edge reuse, dissemination bytes per
  /// delta) and catalog gauges. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

  const QueryCatalog& catalog() const { return catalog_; }
  /// The live workload (the catalog, materialized).
  const Workload& workload() const { return workload_; }
  const GlobalPlan& plan() const { return plan_; }
  const CompiledPlan& compiled() const { return *compiled_; }
  /// Current wire images per node, stamped with epoch = catalog version.
  const std::vector<std::vector<uint8_t>>& images() const { return images_; }
  const PathSystem& paths() const { return paths_; }

 private:
  /// Pre-resolved qlm.* metric handles.
  struct MetricHandles {
    obs::MetricHandle admissions;
    obs::MetricHandle rejections;
    /// One per AdmissionReason rejection slug.
    std::vector<obs::MetricHandle> rejections_by_reason;
    obs::MetricHandle replans;
    obs::MetricHandle edges_reused;
    obs::MetricHandle edges_reoptimized;
    obs::MetricHandle images_shipped;
    obs::MetricHandle bumps_shipped;
    obs::MetricHandle delta_state_bytes;
    obs::MetricHandle catalog_size;
    obs::MetricHandle catalog_logical_size;
    obs::MetricHandle catalog_version;
    obs::MetricHandle batch_batches;
    obs::MetricHandle batch_requests;
    obs::MetricHandle batch_commits;
    obs::MetricHandle batch_fallbacks;
    obs::MetricHandle dedup_hits;
    obs::MetricHandle dedup_releases;
  };

  /// Validates `request` against `catalog` and, on acceptance, applies it.
  /// Holds ALL structural gates (including the believed-alive-source
  /// check), so batch and standalone mutations share one rulebook.
  MutationOutcome ValidateAndApply(QueryCatalog& catalog,
                                   const MutationRequest& request) const;
  /// Single-request pipeline (the public mutation methods).
  MutationResult ApplySingle(const MutationRequest& request);
  /// Commits a refcount-only candidate: no replan, no epoch, no version.
  MutationResult CommitRefcountOnly(QueryCatalog candidate,
                                    const MutationOutcome& outcome);
  /// Steps 2-5 of the pipeline for a structurally valid candidate.
  MutationResult Commit(QueryCatalog candidate);
  /// Budget-contended batch path: per-request sequential application.
  BatchResult SequentialFallback(const std::vector<MutationRequest>& requests);
  bool BelievedDead(NodeId node) const;
  void RecordRejection(AdmissionReason reason);
  void RefreshCatalogGauges();

  const Topology* topology_;
  NodeId base_;
  LifecycleOptions options_;
  PathSystem paths_;
  QueryCatalog catalog_;
  Workload workload_;
  GlobalPlan plan_;
  std::shared_ptr<CompiledPlan> compiled_;
  std::vector<std::vector<uint8_t>> images_;
  SelfHealingRuntime* runtime_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;
};

}  // namespace m2m

#endif  // M2M_LIFECYCLE_LIFECYCLE_H_
