#ifndef M2M_LIFECYCLE_LIFECYCLE_H_
#define M2M_LIFECYCLE_LIFECYCLE_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate_function.h"
#include "common/ids.h"
#include "lifecycle/admission.h"
#include "lifecycle/catalog.h"
#include "obs/metrics.h"
#include "plan/consistency.h"
#include "plan/node_tables.h"
#include "plan/planner.h"
#include "routing/path_system.h"
#include "sim/self_healing.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Knobs for the query lifecycle manager.
struct LifecycleOptions {
  PlannerOptions planner;
  AdmissionLimits limits;
};

/// Outcome of one lifecycle mutation. On rejection the decision carries the
/// typed reason and every other field reflects the *unchanged* state — the
/// catalog, plan, and images are exactly what they were before the call.
struct MutationResult {
  AdmissionDecision decision;
  /// Catalog version after the call (unchanged on rejection).
  int64_t catalog_version = 0;
  /// Incremental replan bookkeeping (zeros on rejection).
  UpdateStats replan;
  /// Corollary 1 accounting for admitted mutations: the predicted
  /// perturbation set for the workload delta, and the edges the plan
  /// actually changed on (always a subset — CHECKed at commit).
  std::vector<DirectedEdge> predicted_edges;
  std::vector<DirectedEdge> divergent_edges;
  /// Dissemination delta for admitted mutations: full images vs. 5-byte
  /// epoch bumps, and their total payload bytes.
  int images_shipped = 0;
  int bumps_shipped = 0;
  int64_t delta_state_bytes = 0;
};

/// The query lifecycle manager (QLM): owns the versioned query catalog at
/// the base station and serves runtime workload churn — AdmitQuery,
/// RetireQuery, AddSource / RemoveSource — with incremental Corollary 1
/// re-planning and typed admission control.
///
/// Every mutation runs one pipeline:
///   1. Structural validation against the current catalog (typed rejection,
///      nothing mutated).
///   2. Candidate build: the mutated catalog is materialized as a workload
///      and incrementally re-planned with ReplanForWorkload — routing trees
///      and per-edge solutions are reused wherever the mutation's bipartite
///      neighborhoods are untouched.
///   3. Validation: the candidate must pass the Theorem 1 consistency
///      checker, and its divergence from the live plan must lie inside the
///      Corollary 1 predicted perturbation set (both CHECKed — a violation
///      is a planner bug, not an admissible outcome).
///   4. Admission control: the candidate plan is evaluated against the
///      Theorem 3 state bound, the TDMA slot budget, and the per-node
///      energy budget; violations reject with a typed reason and leave the
///      catalog and plan untouched.
///   5. Commit: the catalog versions forward, the candidate becomes the
///      live plan (compiled at plan epoch = catalog version), the
///      per-node image diff is the dissemination delta, and — when a
///      self-healing runtime is attached — the new workload is submitted
///      so the delta rides the epoch-versioned control plane and churn
///      composes with failures, loss, and rejoin.
///
/// The QLM plans against the *deployment* topology: admission budgets are
/// capacity questions, answered against configured capacity rather than
/// transient failure beliefs. An attached runtime prunes believed-dead
/// sources itself, exactly as it does for its configured workload; the
/// only belief the QLM consults is the alive-source check (admitting a
/// query every source of which is believed dead would hand the runtime an
/// unservable task).
class QueryLifecycleManager {
 public:
  QueryLifecycleManager(const Topology& topology, const Workload& initial,
                        NodeId base_station,
                        const LifecycleOptions& options = {});

  /// Registers a new query for `destination` aggregating `spec`'s weight
  /// keys. The spec's weights need not be sorted; the catalog canonicalizes.
  MutationResult AdmitQuery(NodeId destination, const FunctionSpec& spec);

  /// Unregisters `destination`'s query. The last query cannot be retired
  /// (an empty catalog has no plan to disseminate).
  MutationResult RetireQuery(NodeId destination);

  /// Adds `source` to `destination`'s query.
  MutationResult AddSource(NodeId destination, NodeId source, double weight);

  /// Removes `source` from `destination`'s query; the query must keep at
  /// least one source (and, when a runtime is attached, at least one
  /// believed-alive source).
  MutationResult RemoveSource(NodeId destination, NodeId source);

  /// Attaches the self-healing runtime that should receive admitted
  /// workloads (SubmitWorkload on every commit). Pass nullptr to detach.
  void AttachRuntime(SelfHealingRuntime* runtime) { runtime_ = runtime; }

  /// Attaches a metrics registry; mutations then record qlm.* counters
  /// (admissions, rejections by reason, replan edge reuse, dissemination
  /// bytes per delta) and catalog gauges. Pass nullptr to detach.
  void set_metrics(obs::MetricsRegistry* metrics);

  const QueryCatalog& catalog() const { return catalog_; }
  /// The live workload (the catalog, materialized).
  const Workload& workload() const { return workload_; }
  const GlobalPlan& plan() const { return plan_; }
  const CompiledPlan& compiled() const { return *compiled_; }
  /// Current wire images per node, stamped with epoch = catalog version.
  const std::vector<std::vector<uint8_t>>& images() const { return images_; }
  const PathSystem& paths() const { return paths_; }

 private:
  /// Pre-resolved qlm.* metric handles.
  struct MetricHandles {
    obs::MetricHandle admissions;
    obs::MetricHandle rejections;
    /// One per AdmissionReason rejection slug.
    std::vector<obs::MetricHandle> rejections_by_reason;
    obs::MetricHandle edges_reused;
    obs::MetricHandle edges_reoptimized;
    obs::MetricHandle images_shipped;
    obs::MetricHandle bumps_shipped;
    obs::MetricHandle delta_state_bytes;
    obs::MetricHandle catalog_size;
    obs::MetricHandle catalog_version;
  };

  MutationResult Reject(AdmissionReason reason, std::string detail);
  /// Steps 2-5 of the pipeline for a structurally valid candidate.
  /// `affected` is the mutated destination (alive-source check scope).
  MutationResult Commit(QueryCatalog candidate, NodeId affected);
  bool BelievedDead(NodeId node) const;

  const Topology* topology_;
  NodeId base_;
  LifecycleOptions options_;
  PathSystem paths_;
  QueryCatalog catalog_;
  Workload workload_;
  GlobalPlan plan_;
  std::shared_ptr<CompiledPlan> compiled_;
  std::vector<std::vector<uint8_t>> images_;
  SelfHealingRuntime* runtime_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  MetricHandles handles_;
};

}  // namespace m2m

#endif  // M2M_LIFECYCLE_LIFECYCLE_H_
