#ifndef M2M_LIFECYCLE_CHURN_SCHEDULE_H_
#define M2M_LIFECYCLE_CHURN_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "agg/aggregate_function.h"
#include "common/ids.h"
#include "lifecycle/lifecycle.h"
#include "topology/topology.h"
#include "workload/workload.h"

namespace m2m {

/// Kind of scheduled workload mutation (query arrival/departure churn).
enum class ChurnType : uint8_t {
  kAdmit,         ///< A new query arrives.
  kRetire,        ///< A live query departs.
  kAddSource,     ///< A live query gains a source.
  kRemoveSource,  ///< A live query loses a source.
};

std::string ToString(ChurnType type);

/// One scheduled mutation. `spec` is populated for kAdmit; `source` and
/// `weight` for the source mutations.
struct ChurnEvent {
  int round = 0;
  ChurnType type = ChurnType::kAdmit;
  NodeId destination = kInvalidNode;
  NodeId source = kInvalidNode;
  double weight = 1.0;
  FunctionSpec spec;
};

struct ChurnScheduleOptions {
  /// Rounds the schedule covers; events land in [1, rounds - 1].
  int rounds = 8;
  int admissions = 2;
  int retirements = 1;
  int source_adds = 2;
  int source_removes = 1;
  /// Sources drawn for each admitted query.
  int sources_per_admission = 3;
  AggregateKind kind = AggregateKind::kWeightedAverage;
  double weight_min = 0.5;
  double weight_max = 1.5;
  uint64_t seed = 1;
};

/// A reproducible schedule of query arrivals and departures, the workload
/// analog of FaultSchedule: deterministic in (topology, initial workload,
/// forbidden set, options), so churn experiments replay byte-identically.
///
/// Generation simulates catalog membership so every event is structurally
/// valid *if all prior events committed*: admissions pick unserved
/// destinations, retirements pick live queries, source mutations pick live
/// queries with room to mutate. Admission-control rejections at
/// application time (budget limits, dead sources) simply leave the catalog
/// unchanged — later events that assumed the mutation then draw their own
/// typed rejections, which is valid churn, not an error. Destinations in
/// `forbidden_destinations` are never admitted or retired. An event slot
/// with no valid target (e.g. a retirement when only one query is live) is
/// skipped deterministically.
class ChurnSchedule {
 public:
  static ChurnSchedule Generate(
      const Topology& topology, const Workload& initial,
      const std::vector<NodeId>& forbidden_destinations,
      const ChurnScheduleOptions& options);

  const ChurnScheduleOptions& options() const { return options_; }
  /// All events, ordered by round (application order within a round is
  /// list order).
  const std::vector<ChurnEvent>& events() const { return events_; }
  std::vector<ChurnEvent> EventsAt(int round) const;

  /// Every node any event references (destinations and sources),
  /// ascending. Fault schedules driven alongside churn typically protect
  /// these so a scheduled mutation never races a node death.
  std::vector<NodeId> ReferencedNodes() const;

  /// Human-readable event list (stable across runs; used in traces).
  std::string Describe() const;

 private:
  ChurnScheduleOptions options_;
  std::vector<ChurnEvent> events_;
};

/// Applies one scheduled event through the lifecycle manager.
MutationResult ApplyChurnEvent(QueryLifecycleManager& manager,
                               const ChurnEvent& event);

/// The event as a batchable lifecycle request.
MutationRequest ToMutationRequest(const ChurnEvent& event);

/// Applies a round's events as ONE lifecycle batch (one replan + one epoch
/// bump on the fast path) instead of one mutation per event. Guaranteed to
/// land on the same final catalog, plan, and wire images as sequential
/// ApplyChurnEvent replay of the same list — the batch validates requests
/// in order against the evolving candidate, and budget-contended batches
/// degrade to exact sequential application.
BatchResult ApplyChurnEventsBatched(QueryLifecycleManager& manager,
                                    const std::vector<ChurnEvent>& events);

}  // namespace m2m

#endif  // M2M_LIFECYCLE_CHURN_SCHEDULE_H_
