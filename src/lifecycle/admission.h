#ifndef M2M_LIFECYCLE_ADMISSION_H_
#define M2M_LIFECYCLE_ADMISSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "plan/node_tables.h"
#include "sim/energy_model.h"
#include "topology/topology.h"

namespace m2m {

/// Why a lifecycle mutation was admitted or rejected. Structural reasons
/// come from validating the request against the catalog; budget reasons
/// come from evaluating the *candidate* plan the mutation would produce
/// against the deployment's configured capacity.
enum class AdmissionReason : uint8_t {
  kAdmitted,
  // --- Structural (request vs. catalog) ---------------------------------
  kDuplicateDestination,  ///< AdmitQuery for a destination already served.
  kUnknownDestination,    ///< Retire/Modify for a destination not served.
  kDuplicateSource,       ///< AddSource for a source already present.
  kUnknownSource,         ///< RemoveSource for a source not present.
  kEmptySourceSet,        ///< Admit with no sources / remove last source.
  kInvalidNode,           ///< Node id out of range, or dest as own source.
  kNoAliveSources,        ///< Every requested source is believed dead.
  // --- Budget (candidate plan vs. configured capacity) ------------------
  kStateBound,    ///< Theorem 3: total table entries over the state bound.
  kTdmaCapacity,  ///< Round schedule would exceed the TDMA slot budget.
  kEnergyBudget,  ///< Some node's per-round radio energy over budget.
  /// Battery-aware lifetime gate: under the candidate plan's steady-state
  /// drain, some node's residual battery dies before the deployment's
  /// declared lifetime budget.
  kBatteryLifetime,
  // --- Tenant policy (multi-tenant frontend, lifecycle/tenant.h) --------
  kTenantUnknown,  ///< Request from a tenant that was never registered.
  kTenantQuota,    ///< A per-tenant QoS quota would be exceeded.
  kSharedQuery,    ///< Source mutation on a query other tenants still hold.
};

std::string ToString(AdmissionReason reason);

/// Configured capacity the admission layer enforces on candidate plans.
/// Zero disables a limit. The defaults enforce only the Theorem 3 bound,
/// which is not a tunable: it is the paper's guarantee that total state
/// stays within a constant factor of min(sum |T_s|, sum |A_d|).
struct AdmissionLimits {
  /// Theorem 3 constant: reject when total table entries exceed
  /// state_bound_factor * min(sum |T_s|, sum |A_d|). The repo's standing
  /// regression (node_tables_test) holds factor 6 for every generated
  /// workload; admitting past it would break the theorem's contract.
  double state_bound_factor = 6.0;
  /// Maximum TDMA slots per round (round length the MAC can sustain).
  int max_tdma_slots = 0;
  /// Maximum per-node radio energy per round, in millijoules.
  double max_node_energy_mj = 0.0;
  /// Battery-aware lifetime gate (0 disables): minimum number of rounds
  /// every node's residual charge must survive under the candidate plan's
  /// steady-state per-round drain (plus `idle_mj_per_round`). Requires
  /// `node_residual_mj`.
  int lifetime_budget_rounds = 0;
  /// Residual battery per node in millijoules, indexed by node id (the
  /// base station's in-band prediction, not the physical ledger). Must
  /// cover every node when the lifetime gate is enabled.
  std::vector<double> node_residual_mj;
  /// Flat non-radio drain added to every node's per-round drain when
  /// evaluating the lifetime gate.
  double idle_mj_per_round = 0.0;
  EnergyModel energy;
};

/// Outcome of one admission check or lifecycle mutation.
struct AdmissionDecision {
  bool admitted = false;
  AdmissionReason reason = AdmissionReason::kAdmitted;
  /// Human-readable context for rejections.
  std::string detail;
  /// Node that tripped a per-node budget (energy), else kInvalidNode.
  NodeId offending_node = kInvalidNode;
  /// For budget rejections: the value the candidate plan would reach and
  /// the configured limit it violates.
  double observed = 0.0;
  double limit = 0.0;

  static AdmissionDecision Admit();
  static AdmissionDecision Reject(AdmissionReason reason,
                                  std::string detail);
};

/// Per-node radio energy of one data round of `compiled`, in millijoules:
/// each outgoing message pays TX at its sender and RX at its recipient for
/// every physical hop of its edge's segment (header + payload bytes).
/// Deterministic in the compiled plan; the admission layer's energy budget
/// evaluates candidate plans through this.
std::vector<double> PerNodeRoundEnergyMj(const CompiledPlan& compiled,
                                         const FunctionSet& functions,
                                         const EnergyModel& energy);

/// Evaluates a candidate compiled plan against the configured budgets:
/// Theorem 3 state bound, TDMA slot capacity, per-node round energy,
/// battery lifetime — in that order, reporting the first violation.
/// Read-only: callers decide whether to commit or discard the candidate.
AdmissionDecision CheckPlanBudgets(const CompiledPlan& compiled,
                                   const FunctionSet& functions,
                                   const Topology& topology,
                                   const AdmissionLimits& limits);

}  // namespace m2m

#endif  // M2M_LIFECYCLE_ADMISSION_H_
