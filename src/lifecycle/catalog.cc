#include "lifecycle/catalog.h"

#include <algorithm>

#include "common/check.h"

namespace m2m {

namespace {

/// Canonicalizes a spec's weights: sorted by source, unique keys.
void SortWeights(FunctionSpec& spec) {
  std::sort(spec.weights.begin(), spec.weights.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

}  // namespace

FunctionSpec CanonicalizeSpec(const FunctionSpec& spec) {
  FunctionSpec canonical = spec;
  SortWeights(canonical);
  return canonical;
}

bool SpecsEquivalent(const FunctionSpec& a, const FunctionSpec& b) {
  return CanonicalizeSpec(a) == CanonicalizeSpec(b);
}

std::vector<NodeId> QueryDefinition::Sources() const {
  std::vector<NodeId> sources;
  sources.reserve(spec.weights.size());
  for (const auto& [s, w] : spec.weights) sources.push_back(s);
  std::sort(sources.begin(), sources.end());
  return sources;
}

bool QueryDefinition::HasSource(NodeId source) const {
  for (const auto& [s, w] : spec.weights) {
    if (s == source) return true;
  }
  return false;
}

QueryCatalog QueryCatalog::FromWorkload(const Workload& workload) {
  M2M_CHECK_EQ(workload.tasks.size(), workload.specs.size());
  QueryCatalog catalog;
  for (size_t i = 0; i < workload.tasks.size(); ++i) {
    QueryDefinition query;
    query.destination = workload.tasks[i].destination;
    query.spec = workload.specs[i];
    catalog.Admit(query);
  }
  catalog.version_ = 0;  // Seeding is version zero, not |tasks| mutations.
  return catalog;
}

bool QueryCatalog::Contains(NodeId destination) const {
  return queries_.contains(destination);
}

const QueryDefinition& QueryCatalog::Get(NodeId destination) const {
  auto it = queries_.find(destination);
  M2M_CHECK(it != queries_.end())
      << "no query for destination " << destination;
  return it->second;
}

void QueryCatalog::Admit(const QueryDefinition& query) {
  M2M_CHECK(query.destination != kInvalidNode);
  M2M_CHECK(!Contains(query.destination))
      << "destination " << query.destination << " already has a query";
  M2M_CHECK(!query.spec.weights.empty())
      << "query for destination " << query.destination << " has no sources";
  QueryDefinition stored = query;
  stored.refcount = 1;
  SortWeights(stored.spec);
  for (size_t i = 0; i < stored.spec.weights.size(); ++i) {
    M2M_CHECK(stored.spec.weights[i].first != stored.destination)
        << "destination " << stored.destination << " is its own source";
    M2M_CHECK(i == 0 ||
              stored.spec.weights[i - 1].first < stored.spec.weights[i].first)
        << "duplicate source " << stored.spec.weights[i].first
        << " for destination " << stored.destination;
  }
  queries_.emplace(stored.destination, std::move(stored));
  ++version_;
}

int64_t QueryCatalog::LogicalSize() const {
  int64_t logical = 0;
  for (const auto& [destination, query] : queries_) {
    logical += query.refcount;
  }
  return logical;
}

int QueryCatalog::RefCount(NodeId destination) const {
  auto it = queries_.find(destination);
  return it == queries_.end() ? 0 : it->second.refcount;
}

int QueryCatalog::Acquire(NodeId destination) {
  auto it = queries_.find(destination);
  M2M_CHECK(it != queries_.end())
      << "no query for destination " << destination;
  return ++it->second.refcount;
}

int QueryCatalog::Release(NodeId destination) {
  auto it = queries_.find(destination);
  M2M_CHECK(it != queries_.end())
      << "no query for destination " << destination;
  M2M_CHECK_GE(it->second.refcount, 2)
      << "releasing the last hold of destination " << destination
      << " must go through Retire";
  return --it->second.refcount;
}

QueryDefinition QueryCatalog::Retire(NodeId destination) {
  auto it = queries_.find(destination);
  M2M_CHECK(it != queries_.end())
      << "no query for destination " << destination;
  M2M_CHECK_EQ(it->second.refcount, 1)
      << "retiring destination " << destination
      << " while other holders remain (refcount " << it->second.refcount
      << ")";
  QueryDefinition retired = std::move(it->second);
  queries_.erase(it);
  ++version_;
  return retired;
}

void QueryCatalog::AddSource(NodeId destination, NodeId source,
                             double weight) {
  auto it = queries_.find(destination);
  M2M_CHECK(it != queries_.end())
      << "no query for destination " << destination;
  M2M_CHECK(source != destination)
      << "destination " << destination << " cannot be its own source";
  M2M_CHECK(!it->second.HasSource(source))
      << "source " << source << " already present for " << destination;
  it->second.spec.weights.emplace_back(source, weight);
  SortWeights(it->second.spec);
  ++version_;
}

void QueryCatalog::RemoveSource(NodeId destination, NodeId source) {
  auto it = queries_.find(destination);
  M2M_CHECK(it != queries_.end())
      << "no query for destination " << destination;
  M2M_CHECK(it->second.HasSource(source))
      << "source " << source << " not present for " << destination;
  M2M_CHECK_GT(it->second.spec.weights.size(), 1u)
      << "removing source " << source << " would leave destination "
      << destination << " with no sources";
  auto& weights = it->second.spec.weights;
  weights.erase(std::remove_if(weights.begin(), weights.end(),
                               [source](const auto& entry) {
                                 return entry.first == source;
                               }),
                weights.end());
  ++version_;
}

Workload QueryCatalog::ToWorkload() const {
  Workload workload;
  for (const auto& [destination, query] : queries_) {
    workload.tasks.push_back(Task{destination, query.Sources()});
    workload.specs.push_back(query.spec);
  }
  workload.RebuildFunctions();
  return workload;
}

}  // namespace m2m
