#include "lifecycle/churn_schedule.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace m2m {

std::string ToString(ChurnType type) {
  switch (type) {
    case ChurnType::kAdmit:
      return "admit";
    case ChurnType::kRetire:
      return "retire";
    case ChurnType::kAddSource:
      return "add_source";
    case ChurnType::kRemoveSource:
      return "remove_source";
  }
  return "unknown";
}

ChurnSchedule ChurnSchedule::Generate(
    const Topology& topology, const Workload& initial,
    const std::vector<NodeId>& forbidden_destinations,
    const ChurnScheduleOptions& options) {
  M2M_CHECK_GE(options.rounds, 2);
  M2M_CHECK_GE(options.sources_per_admission, 1);
  M2M_CHECK_LT(options.sources_per_admission, topology.node_count());
  M2M_CHECK_LE(options.weight_min, options.weight_max);

  const std::set<NodeId> forbidden(forbidden_destinations.begin(),
                                   forbidden_destinations.end());
  // Simulated catalog membership, assuming every prior event commits.
  std::map<NodeId, std::set<NodeId>> membership;
  for (const Task& task : initial.tasks) {
    membership.emplace(task.destination, std::set<NodeId>(
                                             task.sources.begin(),
                                             task.sources.end()));
  }

  Rng rng(options.seed);
  std::vector<ChurnType> types;
  types.insert(types.end(), options.admissions, ChurnType::kAdmit);
  types.insert(types.end(), options.retirements, ChurnType::kRetire);
  types.insert(types.end(), options.source_adds, ChurnType::kAddSource);
  types.insert(types.end(), options.source_removes,
               ChurnType::kRemoveSource);
  rng.Shuffle(types);
  std::vector<int> rounds;
  rounds.reserve(types.size());
  for (size_t i = 0; i < types.size(); ++i) {
    rounds.push_back(
        static_cast<int>(rng.UniformRange(1, options.rounds - 1)));
  }
  std::sort(rounds.begin(), rounds.end());

  ChurnSchedule schedule;
  schedule.options_ = options;
  for (size_t i = 0; i < types.size(); ++i) {
    Rng event_rng = rng.Fork(static_cast<uint64_t>(i));
    ChurnEvent event;
    event.round = rounds[i];
    event.type = types[i];
    switch (types[i]) {
      case ChurnType::kAdmit: {
        std::vector<NodeId> candidates;
        for (NodeId n = 0; n < topology.node_count(); ++n) {
          if (!membership.contains(n) && !forbidden.contains(n)) {
            candidates.push_back(n);
          }
        }
        if (candidates.empty()) continue;
        event.destination = candidates[event_rng.UniformInt(
            static_cast<uint64_t>(candidates.size()))];
        std::vector<NodeId> pool;
        for (NodeId n = 0; n < topology.node_count(); ++n) {
          if (n != event.destination) pool.push_back(n);
        }
        event_rng.Shuffle(pool);
        pool.resize(options.sources_per_admission);
        std::sort(pool.begin(), pool.end());
        event.spec.kind = options.kind;
        for (NodeId source : pool) {
          event.spec.weights.emplace_back(
              source, event_rng.UniformDouble(options.weight_min,
                                              options.weight_max));
        }
        membership.emplace(event.destination,
                           std::set<NodeId>(pool.begin(), pool.end()));
        break;
      }
      case ChurnType::kRetire: {
        // Draining to zero is legal at the manager, but keep two live
        // queries so a subsequent retirement slot still has a target (and
        // the steady-state experiments keep traffic to measure).
        if (membership.size() <= 2) continue;
        std::vector<NodeId> candidates;
        for (const auto& [destination, sources] : membership) {
          if (!forbidden.contains(destination)) {
            candidates.push_back(destination);
          }
        }
        if (candidates.empty()) continue;
        event.destination = candidates[event_rng.UniformInt(
            static_cast<uint64_t>(candidates.size()))];
        membership.erase(event.destination);
        break;
      }
      case ChurnType::kAddSource: {
        std::vector<NodeId> candidates;
        for (const auto& [destination, sources] : membership) {
          if (static_cast<int>(sources.size()) + 1 <
              topology.node_count()) {
            candidates.push_back(destination);
          }
        }
        if (candidates.empty()) continue;
        event.destination = candidates[event_rng.UniformInt(
            static_cast<uint64_t>(candidates.size()))];
        std::set<NodeId>& sources = membership.at(event.destination);
        std::vector<NodeId> addable;
        for (NodeId n = 0; n < topology.node_count(); ++n) {
          if (n != event.destination && !sources.contains(n)) {
            addable.push_back(n);
          }
        }
        event.source = addable[event_rng.UniformInt(
            static_cast<uint64_t>(addable.size()))];
        event.weight = event_rng.UniformDouble(options.weight_min,
                                               options.weight_max);
        sources.insert(event.source);
        break;
      }
      case ChurnType::kRemoveSource: {
        std::vector<NodeId> candidates;
        for (const auto& [destination, sources] : membership) {
          if (sources.size() >= 2) candidates.push_back(destination);
        }
        if (candidates.empty()) continue;
        event.destination = candidates[event_rng.UniformInt(
            static_cast<uint64_t>(candidates.size()))];
        std::set<NodeId>& sources = membership.at(event.destination);
        std::vector<NodeId> removable(sources.begin(), sources.end());
        event.source = removable[event_rng.UniformInt(
            static_cast<uint64_t>(removable.size()))];
        sources.erase(event.source);
        break;
      }
    }
    schedule.events_.push_back(std::move(event));
  }
  return schedule;
}

std::vector<ChurnEvent> ChurnSchedule::EventsAt(int round) const {
  std::vector<ChurnEvent> at;
  for (const ChurnEvent& event : events_) {
    if (event.round == round) at.push_back(event);
  }
  return at;
}

std::vector<NodeId> ChurnSchedule::ReferencedNodes() const {
  std::set<NodeId> nodes;
  for (const ChurnEvent& event : events_) {
    if (event.destination != kInvalidNode) nodes.insert(event.destination);
    if (event.source != kInvalidNode) nodes.insert(event.source);
    for (const auto& [source, weight] : event.spec.weights) {
      nodes.insert(source);
    }
  }
  return {nodes.begin(), nodes.end()};
}

std::string ChurnSchedule::Describe() const {
  std::ostringstream os;
  for (const ChurnEvent& event : events_) {
    os << "round " << event.round << ": " << ToString(event.type)
       << " destination " << event.destination;
    if (event.type == ChurnType::kAdmit) {
      os << " sources {";
      for (size_t i = 0; i < event.spec.weights.size(); ++i) {
        if (i > 0) os << ",";
        os << event.spec.weights[i].first;
      }
      os << "}";
    } else if (event.type == ChurnType::kAddSource ||
               event.type == ChurnType::kRemoveSource) {
      os << " source " << event.source;
    }
    os << "\n";
  }
  return os.str();
}

MutationResult ApplyChurnEvent(QueryLifecycleManager& manager,
                               const ChurnEvent& event) {
  switch (event.type) {
    case ChurnType::kAdmit:
      return manager.AdmitQuery(event.destination, event.spec);
    case ChurnType::kRetire:
      return manager.RetireQuery(event.destination);
    case ChurnType::kAddSource:
      return manager.AddSource(event.destination, event.source,
                               event.weight);
    case ChurnType::kRemoveSource:
      return manager.RemoveSource(event.destination, event.source);
  }
  M2M_CHECK(false) << "unreachable churn type";
}

MutationRequest ToMutationRequest(const ChurnEvent& event) {
  switch (event.type) {
    case ChurnType::kAdmit:
      return MutationRequest::Admit(event.destination, event.spec);
    case ChurnType::kRetire:
      return MutationRequest::Retire(event.destination);
    case ChurnType::kAddSource:
      return MutationRequest::AddSource(event.destination, event.source,
                                        event.weight);
    case ChurnType::kRemoveSource:
      return MutationRequest::RemoveSource(event.destination, event.source);
  }
  M2M_CHECK(false) << "unreachable churn type";
}

BatchResult ApplyChurnEventsBatched(QueryLifecycleManager& manager,
                                    const std::vector<ChurnEvent>& events) {
  std::vector<MutationRequest> requests;
  requests.reserve(events.size());
  for (const ChurnEvent& event : events) {
    requests.push_back(ToMutationRequest(event));
  }
  return manager.ApplyBatch(requests);
}

}  // namespace m2m
