#include "lifecycle/tenant.h"

#include <sstream>
#include <utility>

#include "common/check.h"
#include "lifecycle/catalog.h"

namespace m2m {

TenantBatch::TenantBatch(MultiTenantFrontend* frontend)
    : frontend_(frontend) {
  M2M_CHECK(frontend_ != nullptr);
}

TenantBatch& TenantBatch::Admit(const std::string& tenant, NodeId destination,
                                FunctionSpec spec) {
  return Push({tenant, MutationRequest::Admit(destination, std::move(spec))});
}

TenantBatch& TenantBatch::Retire(const std::string& tenant,
                                 NodeId destination) {
  return Push({tenant, MutationRequest::Retire(destination)});
}

TenantBatch& TenantBatch::AddSource(const std::string& tenant,
                                    NodeId destination, NodeId source,
                                    double weight) {
  return Push(
      {tenant, MutationRequest::AddSource(destination, source, weight)});
}

TenantBatch& TenantBatch::RemoveSource(const std::string& tenant,
                                       NodeId destination, NodeId source) {
  return Push({tenant, MutationRequest::RemoveSource(destination, source)});
}

TenantBatch& TenantBatch::Push(TenantRequest request) {
  requests_.push_back(std::move(request));
  return *this;
}

TenantBatchResult TenantBatch::Commit() {
  TenantBatchResult result = frontend_->ApplyBatch(requests_);
  requests_.clear();
  return result;
}

MultiTenantFrontend::MultiTenantFrontend(QueryLifecycleManager* manager)
    : manager_(manager) {
  M2M_CHECK(manager_ != nullptr);
}

void MultiTenantFrontend::RegisterTenant(const std::string& tenant,
                                         const QosClass& qos) {
  M2M_CHECK(!tenant.empty()) << "tenant name must be non-empty";
  TenantState& state = tenants_[tenant];
  state.qos = qos;
  if (metrics_ != nullptr && !state.holds_gauge.valid()) {
    state.holds_gauge = metrics_->Gauge("tenant.holds." + tenant);
    RefreshHoldsGauge(tenant);
  }
}

bool MultiTenantFrontend::HasTenant(const std::string& tenant) const {
  return tenants_.contains(tenant);
}

void MultiTenantFrontend::AdoptResident(const std::string& tenant,
                                        NodeId destination) {
  auto it = tenants_.find(tenant);
  M2M_CHECK(it != tenants_.end()) << "unknown tenant " << tenant;
  M2M_CHECK(manager_->catalog().Contains(destination))
      << "no resident query for destination " << destination;
  M2M_CHECK_EQ(HoldsAcrossTenants(destination), 0)
      << "destination " << destination << " is already tenant-held";
  it->second.holds[destination] = manager_->catalog().RefCount(destination);
  RefreshHoldsGauge(tenant);
}

int MultiTenantFrontend::Holds(const std::string& tenant,
                               NodeId destination) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  auto hold = it->second.holds.find(destination);
  return hold == it->second.holds.end() ? 0 : hold->second;
}

int64_t MultiTenantFrontend::TotalHolds(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  int64_t total = 0;
  for (const auto& [destination, holds] : it->second.holds) total += holds;
  return total;
}

int MultiTenantFrontend::HoldsAcrossTenants(NodeId destination) const {
  int total = 0;
  for (const auto& [name, state] : tenants_) {
    auto hold = state.holds.find(destination);
    if (hold != state.holds.end()) total += hold->second;
  }
  return total;
}

void MultiTenantFrontend::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  handles_.batches = metrics_->Counter("tenant.batches");
  handles_.requests = metrics_->Counter("tenant.requests");
  handles_.rejections = metrics_->Counter("tenant.rejections");
  handles_.reject_unknown =
      metrics_->Counter("tenant.rejections.tenant_unknown");
  handles_.reject_quota = metrics_->Counter("tenant.rejections.tenant_quota");
  handles_.reject_shared =
      metrics_->Counter("tenant.rejections.shared_query");
  for (auto& [name, state] : tenants_) {
    if (!state.holds_gauge.valid()) {
      state.holds_gauge = metrics_->Gauge("tenant.holds." + name);
    }
    RefreshHoldsGauge(name);
  }
}

void MultiTenantFrontend::RefreshHoldsGauge(const std::string& tenant) {
  if (metrics_ == nullptr) return;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.holds_gauge.valid()) return;
  metrics_->Set(it->second.holds_gauge, TotalHolds(tenant));
}

TenantBatchResult MultiTenantFrontend::ApplyBatch(
    const std::vector<TenantRequest>& requests) {
  TenantBatchResult result;
  result.outcomes.resize(requests.size());
  if (metrics_ != nullptr) {
    metrics_->Add(handles_.batches, 1);
    metrics_->Add(handles_.requests, static_cast<int64_t>(requests.size()));
  }

  // Tenant gates, evaluated against staged within-batch state so a batch
  // behaves like its own sequential replay at the tenant level too.
  std::map<std::string, int64_t> staged_resident;
  std::map<std::pair<std::string, NodeId>, int> staged_holds;
  std::vector<int> forwarded_index(requests.size(), -1);
  std::vector<MutationRequest> forwarded;
  for (size_t i = 0; i < requests.size(); ++i) {
    const TenantRequest& tr = requests[i];
    auto tenant_it = tenants_.find(tr.tenant);
    if (tenant_it == tenants_.end()) {
      std::ostringstream detail;
      detail << "tenant \"" << tr.tenant << "\" is not registered";
      result.outcomes[i].decision = AdmissionDecision::Reject(
          AdmissionReason::kTenantUnknown, detail.str());
      continue;
    }
    const QosClass& qos = tenant_it->second.qos;
    switch (tr.request.type) {
      case MutationType::kAdmit: {
        int64_t& resident =
            staged_resident.try_emplace(tr.tenant, TotalHolds(tr.tenant))
                .first->second;
        if (qos.max_resident_queries > 0 &&
            resident + 1 > qos.max_resident_queries) {
          std::ostringstream detail;
          detail << "tenant \"" << tr.tenant << "\" would hold "
                 << resident + 1 << " queries > quota "
                 << qos.max_resident_queries;
          result.outcomes[i].decision = AdmissionDecision::Reject(
              AdmissionReason::kTenantQuota, detail.str());
          continue;
        }
        if (qos.max_sources_per_query > 0 &&
            static_cast<int>(tr.request.spec.weights.size()) >
                qos.max_sources_per_query) {
          std::ostringstream detail;
          detail << "query for destination " << tr.request.destination
                 << " aggregates " << tr.request.spec.weights.size()
                 << " sources > tenant \"" << tr.tenant << "\" quota "
                 << qos.max_sources_per_query;
          result.outcomes[i].decision = AdmissionDecision::Reject(
              AdmissionReason::kTenantQuota, detail.str());
          continue;
        }
        ++resident;
        break;
      }
      case MutationType::kRetire: {
        int& staged = staged_holds
                          .try_emplace({tr.tenant, tr.request.destination},
                                       Holds(tr.tenant,
                                             tr.request.destination))
                          .first->second;
        if (staged < 1) {
          std::ostringstream detail;
          detail << "tenant \"" << tr.tenant
                 << "\" holds no query for destination "
                 << tr.request.destination;
          result.outcomes[i].decision = AdmissionDecision::Reject(
              AdmissionReason::kUnknownDestination, detail.str());
          continue;
        }
        --staged;
        --staged_resident.try_emplace(tr.tenant, TotalHolds(tr.tenant))
              .first->second;
        break;
      }
      case MutationType::kAddSource:
      case MutationType::kRemoveSource: {
        // Mutating the physical query would rewrite what every co-holder's
        // query means; require an exclusive hold.
        const NodeId destination = tr.request.destination;
        if (manager_->catalog().Contains(destination) &&
            manager_->catalog().RefCount(destination) !=
                Holds(tr.tenant, destination)) {
          std::ostringstream detail;
          detail << "destination " << destination << "'s query has "
                 << manager_->catalog().RefCount(destination)
                 << " holds but tenant \"" << tr.tenant << "\" owns "
                 << Holds(tr.tenant, destination);
          result.outcomes[i].decision = AdmissionDecision::Reject(
              AdmissionReason::kSharedQuery, detail.str());
          continue;
        }
        break;
      }
    }
    forwarded_index[i] = static_cast<int>(forwarded.size());
    forwarded.push_back(tr.request);
  }

  // ONE manager batch for everything that passed the tenant gates.
  if (!forwarded.empty()) {
    BatchResult inner = manager_->ApplyBatch(forwarded);
    result.committed = inner.committed;
    result.sequential_fallback = inner.sequential_fallback;
    result.commit = std::move(inner.commit);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (forwarded_index[i] < 0) continue;
      result.outcomes[i] = inner.outcomes[forwarded_index[i]];
    }
  } else {
    result.commit.catalog_version = manager_->catalog().version();
  }

  // Reconcile holdings from ACTUAL outcomes only.
  for (size_t i = 0; i < requests.size(); ++i) {
    const MutationOutcome& outcome = result.outcomes[i];
    if (forwarded_index[i] < 0) {
      ++result.rejected;
      ++result.tenant_rejected;
      if (metrics_ != nullptr) {
        metrics_->Add(handles_.rejections, 1);
        switch (outcome.decision.reason) {
          case AdmissionReason::kTenantUnknown:
            metrics_->Add(handles_.reject_unknown, 1);
            break;
          case AdmissionReason::kTenantQuota:
            metrics_->Add(handles_.reject_quota, 1);
            break;
          case AdmissionReason::kSharedQuery:
            metrics_->Add(handles_.reject_shared, 1);
            break;
          default:
            break;
        }
      }
      continue;
    }
    if (!outcome.decision.admitted) {
      ++result.rejected;
      continue;
    }
    ++result.accepted;
    const TenantRequest& tr = requests[i];
    TenantState& state = tenants_.at(tr.tenant);
    if (tr.request.type == MutationType::kAdmit) {
      ++state.holds[tr.request.destination];
      RefreshHoldsGauge(tr.tenant);
    } else if (tr.request.type == MutationType::kRetire) {
      auto hold = state.holds.find(tr.request.destination);
      M2M_CHECK(hold != state.holds.end() && hold->second >= 1)
          << "tenant \"" << tr.tenant
          << "\" retire outcome without a matching hold";
      if (--hold->second == 0) state.holds.erase(hold);
      RefreshHoldsGauge(tr.tenant);
    }
  }
  return result;
}

namespace {

MutationResult SingleResult(const TenantBatchResult& batch,
                            int64_t catalog_version) {
  MutationResult result = batch.commit;
  result.decision = batch.outcomes[0].decision;
  result.deduplicated = batch.outcomes[0].deduplicated;
  result.refcount = batch.outcomes[0].refcount;
  if (!result.decision.admitted) {
    result = MutationResult{};
    result.decision = batch.outcomes[0].decision;
    result.catalog_version = catalog_version;
  }
  return result;
}

}  // namespace

MutationResult MultiTenantFrontend::AdmitQuery(const std::string& tenant,
                                               NodeId destination,
                                               const FunctionSpec& spec) {
  TenantBatchResult batch =
      ApplyBatch({{tenant, MutationRequest::Admit(destination, spec)}});
  return SingleResult(batch, manager_->catalog().version());
}

MutationResult MultiTenantFrontend::RetireQuery(const std::string& tenant,
                                                NodeId destination) {
  TenantBatchResult batch =
      ApplyBatch({{tenant, MutationRequest::Retire(destination)}});
  return SingleResult(batch, manager_->catalog().version());
}

MutationResult MultiTenantFrontend::AddSource(const std::string& tenant,
                                              NodeId destination,
                                              NodeId source, double weight) {
  TenantBatchResult batch = ApplyBatch(
      {{tenant, MutationRequest::AddSource(destination, source, weight)}});
  return SingleResult(batch, manager_->catalog().version());
}

MutationResult MultiTenantFrontend::RemoveSource(const std::string& tenant,
                                                 NodeId destination,
                                                 NodeId source) {
  TenantBatchResult batch = ApplyBatch(
      {{tenant, MutationRequest::RemoveSource(destination, source)}});
  return SingleResult(batch, manager_->catalog().version());
}

}  // namespace m2m
